package verify

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/workloads"
)

func refinePQ(t testing.TB, cfg protogen.Config) (*spec.System, *protogen.Refinement) {
	t.Helper()
	sys, bus := workloads.PQ()
	ref, err := protogen.Generate(sys, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, ref
}

// robustCfg keeps the hardened protocol's timers small so the checker's
// state space stays tight without changing the protocol's shape.
func robustCfg(parity bool) protogen.Config {
	return protogen.Config{
		Protocol: spec.FullHandshake, Robust: true, Parity: parity,
		TimeoutClocks: 8, MaxRetries: 2,
	}
}

func mustCheck(t testing.TB, sys *spec.System, cfg Config) *Report {
	t.Helper()
	rep, err := Check(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func hasKind(rep *Report, k Kind) *Violation {
	for i := range rep.Violations {
		if rep.Violations[i].Kind == k {
			return &rep.Violations[i]
		}
	}
	return nil
}

// TestFaultFreeBaselineClean: with no fault budget the paper's baseline
// full handshake is deadlock-free, conflict-free and delivers exactly
// the golden finals — the checker must prove it, not just fail to
// disprove it (the report must be complete).
func TestFaultFreeBaselineClean(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	rep := mustCheck(t, sys, Config{})
	if !rep.Clean() {
		t.Fatalf("baseline fault-free not clean:\n%s", rep.Format())
	}
	if rep.GoldenClocks < 0 {
		t.Fatal("golden simulation failed")
	}
	if rep.States < 10 || rep.Transitions < int64(rep.States)-1 {
		t.Fatalf("implausible exploration: %d states, %d transitions", rep.States, rep.Transitions)
	}
}

// singleWriteSystem carries one write channel: the half handshake's
// single-driver case, where no turnaround contention can exist.
func singleWriteSystem() (*spec.System, *spec.Bus) {
	sys := spec.NewSystem("SW")
	comp1 := sys.AddModule("comp1")
	comp2 := sys.AddModule("comp2")
	p := comp1.AddBehavior(spec.NewBehavior("P"))
	x := comp2.AddVariable(spec.NewVar("X", spec.BitVector(16)))
	p.Body = []spec.Stmt{
		spec.AssignVar(spec.Ref(x), spec.ToVec(spec.Int(32), 16)),
	}
	ch := sys.AddChannel(&spec.Channel{Name: "CH0", Accessor: p, Var: x, Dir: spec.Write})
	bus := &spec.Bus{Name: "B", Channels: []*spec.Channel{ch}, Width: 8}
	sys.Buses = append(sys.Buses, bus)
	return sys, bus
}

func TestFaultFreeHalfHandshakeClean(t *testing.T) {
	sys, bus := singleWriteSystem()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.HalfHandshake}); err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, sys, Config{})
	if !rep.Clean() {
		t.Fatalf("half handshake single-writer not clean:\n%s", rep.Format())
	}
}

// TestHalfHandshakeReadTurnaroundContention documents a true finding:
// on the half handshake, a server finishing a read response leaves its
// final START-low write pending when the dispatcher re-checks its
// trigger, phantom-serves another word, and drives DATA/START into the
// accessor's next transaction. The simulator's last-writer-wins delta
// merge masks the contention (the PQ finals survive by schedule luck);
// the checker must expose the multi-driver window.
func TestHalfHandshakeReadTurnaroundContention(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.HalfHandshake})
	rep := mustCheck(t, sys, Config{})
	if hasKind(rep, DriverConflict) == nil {
		t.Fatalf("read-turnaround contention not found:\n%s", rep.Format())
	}
}

// TestBaselineDroppedStrobeDeadlock is the issue's acceptance demo: one
// dropped strobe anywhere in the baseline handshake wedges the system,
// and the checker returns the concrete minimal interleaving, which
// replays through the simulator to the same deadlock.
func TestBaselineDroppedStrobeDeadlock(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	rep := mustCheck(t, sys, Config{MaxDrops: 1})
	v := hasKind(rep, Deadlock)
	if v == nil {
		t.Fatalf("no deadlock found under a 1-drop budget:\n%s", rep.Format())
	}
	if v.Cex == nil || len(v.Cex.Drops) == 0 {
		t.Fatalf("deadlock counterexample has no injected fault: %+v", v)
	}
	hasDropStep := false
	for _, s := range v.Cex.Steps {
		if s.Drop != "" {
			hasDropStep = true
		}
	}
	if !hasDropStep {
		t.Fatalf("no step marks the dropped transition:\n%s", v.Cex.Format())
	}

	r, err := v.Cex.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reproduced {
		t.Fatalf("replay did not reproduce the deadlock: %s\ncex:\n%s", r.Outcome, v.Cex.Format())
	}
	if !strings.Contains(r.Outcome, "deadlock") {
		t.Fatalf("replay outcome %q does not mention the deadlock", r.Outcome)
	}
}

// pOnlyPQ is workloads.PQSolo: PQ with the staggered Q accessor
// stripped, keeping the robust protocol provable exhaustively.
func pOnlyPQ() (*spec.System, *spec.Bus) {
	return workloads.PQSolo()
}

// TestRobustSurvivesDropBudget: the hardened protocol must be provably
// deadlock-free under the same 1-drop budget that kills the baseline —
// timeouts, retransmission and clean aborts recover every drop position
// that wedges the ideal-wire protocol.
//
// The exhaustive search does surface one genuine residual window the
// randomized fault campaigns never hit: dropping the accessor's *final*
// START fall. The serving server's bounded wait expires and it aborts
// without committing, but the DONE fall its abort path drives (clearing
// the server-owned line, as any release must) is indistinguishable to
// the accessor from a success acknowledgment — a two-generals window,
// so the accessor never retries (silent corruption) and the stuck-high
// START leaves the watchdogs cycling (bounded-response lasso). Both are
// real behaviors of the generated design, confirmed by simulator
// replay below — not model artifacts. What this test pins down is the
// robustness claim that holds: no reachable deadlock, no multi-driver
// contention, and every corruption the checker reports reproduces in
// the simulator.
func TestRobustSurvivesDropBudget(t *testing.T) {
	sys, bus := pOnlyPQ()
	ref, err := protogen.Generate(sys, bus, robustCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, sys, Config{MaxDrops: 1, AbortVars: ref.AbortKeys()})
	if rep.Incomplete {
		t.Fatalf("exploration incomplete (%s); raise bounds for a real verdict", rep.IncompleteReason)
	}
	if v := hasKind(rep, Deadlock); v != nil {
		t.Fatalf("robust protocol deadlocks under 1-drop budget:\n%s", rep.Format())
	}
	if v := hasKind(rep, DriverConflict); v != nil {
		t.Fatalf("robust protocol has driver contention under 1-drop budget:\n%s", rep.Format())
	}
	// The lost-ack-fall window must be found — and must be real.
	v := hasKind(rep, Corruption)
	if v == nil {
		t.Fatalf("expected the lost-ack-fall corruption window to be found:\n%s", rep.Format())
	}
	r, err := v.Cex.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reproduced {
		t.Fatalf("corruption did not reproduce in the simulator (%s) — model artifact?\n%s",
			r.Outcome, v.Cex.Format())
	}
}

// TestRobustFullPQBoundedNoViolation: the full two-accessor robust
// workload exceeds an exhaustive budget (the stagger counter
// interleaves with every retry-timer phase), but BFS order guarantees
// any shallow violation would surface first — within the bound there
// must be none.
func TestRobustFullPQBoundedNoViolation(t *testing.T) {
	sys, ref := refinePQ(t, robustCfg(false))
	rep := mustCheck(t, sys, Config{MaxDrops: 1, AbortVars: ref.AbortKeys(), MaxStates: 50_000})
	if len(rep.Violations) > 0 {
		t.Fatalf("robust protocol violated within bounded search:\n%s", rep.Format())
	}
}

// TestBaselineDroppedDataCorruption: dropping a DATA word transition on
// the ideal-wire protocol completes the handshake but delivers a wrong
// value — silent corruption the delivery check must catch and the
// simulator must reproduce.
func TestBaselineDroppedDataCorruption(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	rep := mustCheck(t, sys, Config{MaxDrops: 1, DropFields: []string{"DATA"}})
	v := hasKind(rep, Corruption)
	if v == nil {
		t.Fatalf("no corruption found when DATA words may be dropped:\n%s", rep.Format())
	}
	r, err := v.Cex.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reproduced {
		t.Fatalf("replay did not reproduce the corruption: %s\ncex:\n%s", r.Outcome, v.Cex.Format())
	}
}

// TestWorkerInvariance: the parallel exploration must be observably
// deterministic — identical state count, transition count, depth and
// violation list at any worker count.
func TestWorkerInvariance(t *testing.T) {
	type digest struct {
		states, depth int
		transitions   int64
		violations    string
	}
	mk := func(workers int) digest {
		sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
		rep := mustCheck(t, sys, Config{MaxDrops: 1, Workers: workers})
		var vs []string
		for _, v := range rep.Violations {
			vs = append(vs, v.Kind.String()+": "+v.Message)
		}
		return digest{rep.States, rep.Depth, rep.Transitions, strings.Join(vs, "\n")}
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		if got := mk(workers); got != ref {
			t.Fatalf("workers=%d diverged:\n%+v\nwant (workers=1):\n%+v", workers, got, ref)
		}
	}
}

// TestReductionSoundness: sleep-set reduction may only shrink the state
// count, never change the verdict.
func TestReductionSoundness(t *testing.T) {
	run := func(noRed bool) *Report {
		sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
		return mustCheck(t, sys, Config{MaxDrops: 1, NoReduction: noRed})
	}
	red, full := run(false), run(true)
	if red.States > full.States {
		t.Fatalf("reduction grew the state space: %d reduced vs %d full", red.States, full.States)
	}
	kinds := func(r *Report) string {
		var ks []string
		for _, v := range r.Violations {
			ks = append(ks, v.Kind.String())
		}
		return strings.Join(ks, ",")
	}
	if kinds(red) != kinds(full) {
		t.Fatalf("verdicts differ: reduced [%s] vs full [%s]", kinds(red), kinds(full))
	}
}

// unstaggeredPQ is the PQ workload with Q's stagger delay removed: both
// accessors open transactions on the shared bus concurrently — the race
// the paper's walkthrough avoids by construction.
func unstaggeredPQ() (*spec.System, *spec.Bus) {
	sys, bus := workloads.PQ()
	for _, m := range sys.Modules {
		for _, b := range m.Behaviors {
			if b.Name != "Q" {
				continue
			}
			var body []spec.Stmt
			for _, st := range b.Body {
				if w, ok := st.(*spec.Wait); ok && w.HasFor && w.Until == nil {
					continue
				}
				body = append(body, st)
			}
			b.Body = body
		}
	}
	return sys, bus
}

// TestUnstaggeredAccessorsConflict: without the stagger (and without
// arbitration) the checker must find an interleaving where P and Q
// drive the shared handshake lines concurrently.
func TestUnstaggeredAccessorsConflict(t *testing.T) {
	sys, bus := unstaggeredPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, sys, Config{})
	if hasKind(rep, DriverConflict) == nil {
		t.Fatalf("no driver conflict found for two concurrent accessors:\n%s", rep.Format())
	}
}

// TestArbitrationSerializesAccessors: adding REQ/GRANT arbitration to
// the same unstaggered workload removes every driver conflict.
func TestArbitrationSerializesAccessors(t *testing.T) {
	sys, bus := unstaggeredPQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake, Arbitrate: true}); err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, sys, Config{})
	if v := hasKind(rep, DriverConflict); v != nil {
		t.Fatalf("arbitrated bus still conflicts: %s\n%s", v.Message, rep.Format())
	}
	if v := hasKind(rep, Deadlock); v != nil {
		t.Fatalf("arbitrated bus deadlocks: %s\n%s", v.Message, rep.Format())
	}
}

// livelockSystem holds START asserted forever while toggling DATA — a
// transaction that never completes without ever deadlocking.
func livelockSystem() *spec.System {
	sys := spec.NewSystem("LL")
	m := sys.AddModule("m")
	rec := spec.RecordType{Name: "R", Fields: []spec.Field{
		{Name: "START", Type: spec.Bit},
		{Name: "DATA", Type: spec.BitVector(4)},
	}}
	sig := sys.AddGlobal(spec.NewSignal("S", rec))
	a := m.AddBehavior(spec.NewBehavior("A"))
	m2 := sys.AddModule("m2")
	v := m2.AddVariable(spec.NewVar("V", spec.BitVector(4)))
	ch := sys.AddChannel(&spec.Channel{Name: "CH", Accessor: a, Var: v, Dir: spec.Write})
	sys.Buses = append(sys.Buses, &spec.Bus{
		Name: "S", Signal: sig, Record: rec, Protocol: spec.FullHandshake,
		Channels: []*spec.Channel{ch},
	})
	a.Body = []spec.Stmt{
		spec.AssignSig(spec.FieldOf(spec.Ref(sig), "START"), spec.Int(1)),
		&spec.Loop{Body: []spec.Stmt{
			spec.AssignSig(spec.FieldOf(spec.Ref(sig), "DATA"), spec.Int(1)),
			spec.WaitFor(1),
			spec.AssignSig(spec.FieldOf(spec.Ref(sig), "DATA"), spec.Int(0)),
			spec.WaitFor(1),
		}},
	}
	return sys
}

func TestLivelockDetected(t *testing.T) {
	rep := mustCheck(t, livelockSystem(), Config{MaxClocks: 2000})
	v := hasKind(rep, Livelock)
	if v == nil {
		t.Fatalf("no bounded-response violation on a never-closing transaction:\n%s", rep.Format())
	}
	if v.Cex == nil || v.Cex.LoopStart < 0 {
		t.Fatalf("livelock counterexample has no lasso: %+v", v.Cex)
	}
	r, err := v.Cex.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reproduced {
		t.Fatalf("livelock replay did not hit the clock bound: %s", r.Outcome)
	}
}

// TestWaitOnRejected: sensitivity-list waits are outside the checker's
// model (fixed-delay buses are rate-matched by construction) and must
// be rejected at compile time, not mis-modelled.
func TestWaitOnRejected(t *testing.T) {
	sys := spec.NewSystem("WO")
	m := sys.AddModule("m")
	sig := sys.AddGlobal(spec.NewSignal("G", spec.Bit))
	a := m.AddBehavior(spec.NewBehavior("A"))
	a.Body = []spec.Stmt{spec.WaitOn(sig)}
	_, err := Check(sys, Config{})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("WaitOn not rejected: %v", err)
	}
}

// TestCounterexampleVCD: the deadlock trace dumps to a parseable VCD
// with the bus signal declared and at least one value change.
func TestCounterexampleVCD(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	rep := mustCheck(t, sys, Config{MaxDrops: 1})
	v := hasKind(rep, Deadlock)
	if v == nil {
		t.Fatalf("no deadlock to dump:\n%s", rep.Format())
	}
	var buf bytes.Buffer
	if err := v.Cex.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$var", "B", "$enddefinitions", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD output missing %q:\n%.400s", want, out)
		}
	}
}
