//go:build !unix

package verify

import (
	"io"
	"os"
)

// mmapRegion fallback for platforms without syscall.Mmap: the index
// generation is read into memory. Correctness is identical; only the
// page-cache-backed eviction of the unix build is lost.
type mmapRegion struct {
	data   []byte
	mapped bool
}

func mapFile(f *os.File, size int64) (mmapRegion, error) {
	if size == 0 {
		return mmapRegion{}, nil
	}
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil && err != io.EOF {
		return mmapRegion{}, err
	}
	return mmapRegion{data: b}, nil
}

func (r *mmapRegion) unmap() { r.data, r.mapped = nil, false }
