//go:build unix

package verify

import (
	"os"
	"syscall"
)

// mmapRegion is a read-only view of a finished index file. On unix it
// is a real memory mapping — index generations are immutable once
// written, so the kernel's page cache backs lookups with no user-space
// copy and evicts cold index pages under memory pressure, which is the
// point of spilling in the first place.
type mmapRegion struct {
	data   []byte
	mapped bool
}

func mapFile(f *os.File, size int64) (mmapRegion, error) {
	if size == 0 {
		return mmapRegion{}, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mmapRegion{}, err
	}
	return mmapRegion{data: b, mapped: true}, nil
}

func (r *mmapRegion) unmap() {
	if r.mapped {
		syscall.Munmap(r.data)
	}
	r.data, r.mapped = nil, false
}
