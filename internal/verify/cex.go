package verify

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vcd"
)

// Step is one transition of a counterexample trace: either one process
// running an atomic segment (Proc set) or quiescent time advancing
// (Clocks set).
type Step struct {
	Proc   string
	Drop   string // dropped bus line ("B.START"), "" for a fault-free step
	Clocks int64
	Desc   string // the signal changes the step committed
}

// Counterexample is a minimal (BFS-shortest) interleaving that drives
// the system into a violating state. It replays deterministically
// through the simulator: Drops translate the model's dropped
// transitions into fault.DropEvent faults scheduled by event count, and
// the process order becomes a sim.Config.Schedule priority.
type Counterexample struct {
	Kind    Kind
	Message string
	Steps   []Step
	// LoopStart is the index where a livelock lasso's cycle begins, -1
	// for finite traces.
	LoopStart int
	Drops     []fault.Fault

	sys       *spec.System
	order     []string // process priority, first appearance in the trace
	maxClocks int64
	golden    map[string]string
	abortKeys []string
}

// buildCex reconstructs the shortest path to a violation site and
// renders it by re-running the trace through the model. Per-field
// transition counts are accumulated exactly the way fault.Injector
// counts them in the simulator — including dropped transitions, which
// the injector counts even as it suppresses them — so each dropped
// step's ordinal becomes a replayable DropEvent fault.
func buildCex(m *machine, sr *searcher, site *violationSite, golden map[string]string, abortKeys []string, maxClocks int64) (*Counterexample, error) {
	steps := sr.pathTo(site.node)
	loopStart := -1
	if len(site.loop) > 0 {
		loopStart = len(steps)
		for _, e := range site.loop {
			steps = append(steps, e.via)
		}
	}
	c := &Counterexample{
		Kind: site.kind, Message: site.msg, LoopStart: loopStart,
		sys: m.sys, maxClocks: maxClocks, golden: golden, abortKeys: abortKeys,
	}
	st := m.initialState()
	ec := m.newExecCtx()
	counts := make(map[string]int64)
	seen := make(map[string]bool)
	for _, sp := range steps {
		if sp.proc < 0 {
			ns, clocks, ok := m.tick(st)
			if !ok {
				return nil, fmt.Errorf("trace desynchronized: tick step with no pending timer")
			}
			st = ns
			c.Steps = append(c.Steps, Step{Clocks: clocks, Desc: fmt.Sprintf("%d clock(s) pass", clocks)})
			continue
		}
		p := int(sp.proc)
		prog := m.progs[p]
		res, err := m.exec(ec, st, p)
		if err != nil {
			return nil, err
		}
		dropName := ""
		if sp.drop >= 0 {
			d := m.drops[sp.drop]
			dropName = d.name
			c.Drops = append(c.Drops, fault.Fault{
				Class:       fault.DropEvent,
				Signal:      d.bus.sig.Name,
				Field:       d.bus.rec.Fields[d.field].Name,
				AfterEvents: counts[d.name],
			})
		}
		var parts []string
		for _, cev := range res.commits {
			if cev.bus == nil {
				parts = append(parts, fmt.Sprintf("%s: %s -> %s", m.gname[cev.slot], cev.old, cev.new))
				continue
			}
			ov, okO := cev.old.(sim.RecordVal)
			nv, okN := cev.new.(sim.RecordVal)
			if !okO || !okN {
				continue
			}
			for f := 0; f < len(cev.bus.rec.Fields) && f < 64; f++ {
				if cev.changed&(1<<uint(f)) == 0 {
					continue
				}
				name := cev.bus.sig.Name + "." + cev.bus.rec.Fields[f].Name
				txt := fmt.Sprintf("%s: %s -> %s", name, ov.Fields[f], nv.Fields[f])
				if name == dropName {
					txt += " (dropped on the wire)"
				}
				parts = append(parts, txt)
				counts[name]++
			}
		}
		if len(parts) == 0 {
			parts = append(parts, "(internal step)")
		}
		if !seen[prog.beh.Name] {
			seen[prog.beh.Name] = true
			c.order = append(c.order, prog.beh.Name)
		}
		if sp.drop >= 0 {
			st = m.dropVariant(st, res.st, int(sp.drop))
		} else {
			st = res.st
		}
		c.Steps = append(c.Steps, Step{Proc: prog.beh.Name, Drop: dropName, Desc: strings.Join(parts, ", ")})
	}
	return c, nil
}

// Format renders the trace for humans.
func (c *Counterexample) Format() string {
	var b strings.Builder
	for i, s := range c.Steps {
		if i == c.LoopStart {
			b.WriteString("      -- cycle repeats from here --\n")
		}
		who := "(time)"
		if s.Proc != "" {
			who = s.Proc
		}
		fmt.Fprintf(&b, "    %3d. %-14s %s\n", i+1, who, s.Desc)
	}
	for _, f := range c.Drops {
		fmt.Fprintf(&b, "    fault: %s\n", f)
	}
	return b.String()
}

// ReplayResult classifies one simulator replay of a counterexample.
type ReplayResult struct {
	// Reproduced reports that the simulator exhibited the violation the
	// model predicted. Driver conflicts are a model-level property (the
	// kernel merges same-delta writers before any observer runs), so
	// their replays drive the interleaving for waveform inspection but
	// report Reproduced = false.
	Reproduced bool
	Outcome    string
	Result     *sim.Result // nil when the run errored
}

// mkCfg builds a fresh replay configuration. A factory, not a value:
// the fault injector is stateful and sim.VerifyDeterministic needs an
// equivalent-but-fresh Config per run.
func (c *Counterexample) mkCfg() sim.Config {
	cfg := sim.Config{MaxClocks: c.maxClocks}
	if len(c.Drops) > 0 {
		fault.NewInjector(c.Drops).Attach(&cfg)
	}
	if len(c.order) > 0 {
		order := append([]string(nil), c.order...)
		cfg.Schedule = func(now int64, runnable []string) []string { return order }
	}
	return cfg
}

// SimConfig returns a fresh simulator configuration reproducing the
// counterexample: the dropped transitions as event-scheduled DropEvent
// faults and the trace's process order as the scheduling priority. Each
// call builds a new configuration (the attached fault injector is
// stateful), so callers replaying through several kernels get
// independent instances.
func (c *Counterexample) SimConfig() sim.Config { return c.mkCfg() }

// System returns the refined system the counterexample was found on.
func (c *Counterexample) System() *spec.System { return c.sys }

// Replay drives the counterexample through the simulator: the dropped
// transitions become event-scheduled DropEvent faults and the trace's
// process order becomes the scheduling priority. The replay is first
// validated by sim.VerifyDeterministic (two runs must agree bit for
// bit), then classified against the model's verdict.
func (c *Counterexample) Replay() (*ReplayResult, error) {
	if err := sim.VerifyDeterministic(c.sys, c.mkCfg); err != nil {
		return nil, fmt.Errorf("verify: replay is not deterministic: %w", err)
	}
	s, err := sim.New(c.sys, c.mkCfg())
	if err != nil {
		return nil, err
	}
	res, runErr := s.Run()
	r := &ReplayResult{Result: res}
	timedOut := runErr != nil && strings.Contains(runErr.Error(), "exceeded MaxClocks")
	switch c.Kind {
	case Deadlock:
		var dl *sim.DeadlockError
		if errors.As(runErr, &dl) {
			r.Reproduced = true
			r.Outcome = runErr.Error()
		} else if runErr != nil {
			r.Outcome = runErr.Error()
		} else {
			r.Outcome = "run completed without deadlock"
		}
	case Livelock:
		// A genuine livelock cannot terminate: the run hitting the clock
		// bound is the observable symptom.
		r.Reproduced = timedOut
		if runErr != nil {
			r.Outcome = runErr.Error()
		} else {
			r.Outcome = "run completed"
		}
	case Corruption:
		if runErr != nil {
			r.Outcome = runErr.Error()
			break
		}
		aborted := false
		for _, k := range c.abortKeys {
			if v := res.Finals[k]; v != nil && c.golden[k] != "" && v.String() != c.golden[k] {
				aborted = true
			}
		}
		var bad []string
		skip := make(map[string]bool, len(c.abortKeys))
		for _, k := range c.abortKeys {
			skip[k] = true
		}
		for k, want := range c.golden {
			if skip[k] {
				continue
			}
			if got := res.Finals[k]; got == nil || got.String() != want {
				bad = append(bad, fmt.Sprintf("%s = %v, want %s", k, res.Finals[k], want))
			}
		}
		if len(bad) > 0 && !aborted {
			r.Reproduced = true
			r.Outcome = "silent data corruption: " + strings.Join(bad, "; ")
		} else if aborted {
			r.Outcome = "run aborted cleanly"
		} else {
			r.Outcome = "finals match the golden run"
		}
	case DriverConflict:
		r.Outcome = "driver conflicts are checked on the model (same-delta writers merge in the kernel); inspect the waveform"
		if runErr != nil {
			r.Outcome += "; run ended: " + runErr.Error()
		}
	}
	return r, nil
}

// WriteVCD replays the counterexample with a VCD waveform writer
// attached, dumping every signal change up to the violating state (or
// the replay bound).
func (c *Counterexample) WriteVCD(w io.Writer) error {
	vw, err := vcd.NewWriter(w, c.sys)
	if err != nil {
		return err
	}
	cfg := c.mkCfg()
	cfg.OnEvent = vw.OnEvent
	s, err := sim.New(c.sys, cfg)
	if err != nil {
		return err
	}
	res, runErr := s.Run()
	end := c.maxClocks
	var dl *sim.DeadlockError
	switch {
	case runErr == nil:
		end = res.Clocks
	case errors.As(runErr, &dl):
		end = dl.Now
	}
	return vw.Close(end)
}
