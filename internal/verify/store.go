package verify

import "bytes"

// storeShards is the shard count of the dedup store; a power of two so
// shard selection is a mask of the hash's low bits.
const storeShards = 64

// store is the searcher's deduplicating state index, in the hash-
// compaction lineage: it never retains a state key. Each stored state
// is represented only by the 64-bit FNV-1a hash of its binary encoding,
// mapped to the node index, across storeShards shard maps keyed by the
// hash's low bits. Two distinct states can share a hash, so a hash hit
// is a candidate, not an answer: lookup re-encodes the candidate node's
// state into a scratch buffer and confirms byte equality — unlike
// SPIN's probabilistic bitstate mode, a collision here costs one
// re-encode, never a soundness hole. The rare confirmed-distinct
// same-hash states chain through the overflow map.
//
// Concurrency contract: insert only runs in the sequential merge phase.
// During parallel expansion the store is frozen, so workers may call
// lookup concurrently to pre-dedup successors (a miss must be re-checked
// at merge time — an earlier merge slot may have inserted the state —
// but a hit is final, states are never removed).
type store struct {
	shards   [storeShards]map[uint64]int32
	overflow map[uint64][]int32
}

func newStore() *store {
	st := &store{overflow: make(map[uint64][]int32)}
	for i := range st.shards {
		st.shards[i] = make(map[uint64]int32)
	}
	return st
}

// lookup finds the node whose state encodes to key, confirming every
// same-hash candidate by re-encoding it into scratch and comparing
// bytes. It returns the node index, the (possibly grown) scratch buffer
// for reuse, and whether a confirmed match exists.
func (st *store) lookup(h uint64, key []byte, nodes []*node, scratch []byte) (int32, []byte, bool) {
	j, ok := st.shards[h&(storeShards-1)][h]
	if !ok {
		return 0, scratch, false
	}
	scratch = nodes[j].st.encodeInto(scratch[:0])
	if bytes.Equal(scratch, key) {
		return j, scratch, true
	}
	for _, k := range st.overflow[h] {
		scratch = nodes[k].st.encodeInto(scratch[:0])
		if bytes.Equal(scratch, key) {
			return k, scratch, true
		}
	}
	return 0, scratch, false
}

// insert records node j as (another) state hashing to h. The caller has
// already established via lookup that j's state is not present.
func (st *store) insert(h uint64, j int32) {
	sh := st.shards[h&(storeShards-1)]
	if _, exists := sh[h]; exists {
		st.overflow[h] = append(st.overflow[h], j)
		return
	}
	sh[h] = j
}
