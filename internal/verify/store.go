package verify

import "bytes"

// storeShards is the shard count of the dedup store; a power of two so
// shard selection is a mask of the hash's low bits.
const storeShards = 64

// store is the searcher's deduplicating state index, in the hash-
// compaction lineage: it never retains a state key. Each stored state
// is represented only by the 64-bit FNV-1a hash of its binary encoding,
// mapped to the node index, across storeShards shard maps keyed by the
// hash's low bits. Two distinct states can share a hash, so a hash hit
// is a candidate, not an answer: lookup re-encodes the candidate node's
// state into a scratch buffer and confirms byte equality — unlike
// SPIN's probabilistic bitstate mode, a collision here costs one
// re-encode, never a soundness hole. The rare confirmed-distinct
// same-hash states chain through the overflow map, allocated lazily on
// the first confirmed collision.
//
// With a memory budget (Config.MemBudget) the store is tiered: the
// shard maps index only the hot (resident) nodes, and sealed nodes
// move to the spill tier — lookup falls through to it on a hot miss,
// with identical confirm semantics (spill.go). In lossy mode
// (Config.Lossy) the confirm is skipped in both tiers and a hash match
// is final, which trades a quantified omission probability for never
// touching state bytes on a hit.
//
// Concurrency contract: insert and removeHot only run in sequential
// phases (merge, seal). During parallel expansion the store is frozen,
// so workers may call lookup concurrently to pre-dedup successors (a
// miss must be re-checked at merge time — an earlier merge slot may
// have inserted the state — but a hit is final, states are never
// removed from the store, only moved between tiers).
type store struct {
	shards   [storeShards]map[uint64]int32
	overflow map[uint64][]int32
	lossy    bool
	spill    *spillStore // nil when no memory budget is set
}

func newStore() *store {
	st := &store{}
	for i := range st.shards {
		st.shards[i] = make(map[uint64]int32)
	}
	return st
}

// lookup finds the node whose state encodes to key, confirming every
// same-hash candidate by re-encoding it into scratch and comparing
// bytes (hot tier) or reading its record back (spill tier). It returns
// the node index, the (possibly grown) scratch buffer for reuse, and
// whether a confirmed match exists. The error is always nil without a
// spill tier; with one, it surfaces torn or corrupt spill files.
func (st *store) lookup(h uint64, key []byte, nodes []*node, scratch []byte) (int32, []byte, bool, error) {
	if j, ok := st.shards[h&(storeShards-1)][h]; ok {
		if st.lossy {
			return j, scratch, true, nil
		}
		scratch = nodes[j].st.encodeInto(scratch[:0])
		if bytes.Equal(scratch, key) {
			return j, scratch, true, nil
		}
		for _, k := range st.overflow[h] {
			scratch = nodes[k].st.encodeInto(scratch[:0])
			if bytes.Equal(scratch, key) {
				return k, scratch, true, nil
			}
		}
	}
	// A hash living in the hot tier does not preclude a same-hash
	// sealed state: the tiers split by node age, not by hash.
	if st.spill != nil {
		j, ok, err := st.spill.lookup(h, key, st.lossy)
		if err != nil {
			return 0, scratch, false, err
		}
		if ok {
			return j, scratch, true, nil
		}
	}
	return 0, scratch, false, nil
}

// insert records node j as (another) state hashing to h. The caller has
// already established via lookup that j's state is not present.
func (st *store) insert(h uint64, j int32) {
	sh := st.shards[h&(storeShards-1)]
	if _, exists := sh[h]; exists {
		if st.overflow == nil {
			st.overflow = make(map[uint64][]int32)
		}
		st.overflow[h] = append(st.overflow[h], j)
		return
	}
	sh[h] = j
}

// removeHot drops node j from the hot tier ahead of sealing it into
// the spill tier, promoting the next overflow entry if j headed a
// collision chain. Only called from the sequential seal phase; nodes
// seal in insertion order, so j heads its chain whenever one exists.
func (st *store) removeHot(h uint64, j int32) {
	sh := st.shards[h&(storeShards-1)]
	cur, ok := sh[h]
	if !ok {
		return
	}
	if cur == j {
		if ov := st.overflow[h]; len(ov) > 0 {
			sh[h] = ov[0]
			if len(ov) == 1 {
				delete(st.overflow, h)
			} else {
				st.overflow[h] = ov[1:]
			}
		} else {
			delete(sh, h)
		}
		return
	}
	for i, k := range st.overflow[h] {
		if k == j {
			st.overflow[h] = append(st.overflow[h][:i], st.overflow[h][i+1:]...)
			if len(st.overflow[h]) == 0 {
				delete(st.overflow, h)
			}
			return
		}
	}
}
