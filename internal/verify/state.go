package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/spec"
)

// maxProcs bounds the number of processes so enabled/sleep sets fit a
// uint32 mask.
const maxProcs = 30

// maxSegmentSteps bounds the instructions one atomic segment may
// execute (a runaway zero-delay loop would otherwise hang the checker).
const maxSegmentSteps = 200_000

// machine is the compiled product system: one program per process plus
// the global storage layout and the bus-line bookkeeping the checks
// need.
type machine struct {
	sys   *spec.System
	cfg   Config
	progs []*program
	// Global storage slots: sys.Globals first, then module variables in
	// module order. Signals and shared variables live side by side; the
	// executor distinguishes them via isSignal.
	globals  []*spec.Variable
	gslot    map[*spec.Variable]int
	isSignal []bool
	gname    []string // "Module.Var" for module variables, plain name for globals
	buses    []*busModel
	bySlot   map[int]*busModel
	drops    []dropTarget
	nTrack   int // total tracked bus fields (lastW width)
	// indep[p] has bit q set when p and q have disjoint-enough global
	// footprints to commute (neither writes what the other touches).
	indep  []uint32
	fgMask uint32 // non-server processes
	// Delivery check inputs (from the golden fault-free simulation).
	expected   []sim.Value // per gslot; nil entries unchecked
	abortSlots []int
}

// busModel is the checker's view of one generated bus: which record
// fields carry the handshake strobes and the shared payload lines.
type busModel struct {
	bus  *spec.Bus
	sig  *spec.Variable
	slot int
	rec  spec.RecordType
	// Field indexes into the record; -1 when absent.
	start, done, data, id int
	// trackBase is this bus's offset into state.lastW; trackOf maps a
	// tracked field index to its offset.
	trackBase int
	trackOf   map[int]int
	strobe    map[int]bool
}

// dropTarget is one fault-injection point: a droppable transition of a
// tracked bus field.
type dropTarget struct {
	bus   *busModel
	field int
	name  string // "B.START"
}

func newMachine(sys *spec.System, cfg Config) (*machine, error) {
	m := &machine{
		sys:    sys,
		cfg:    cfg,
		gslot:  make(map[*spec.Variable]int),
		bySlot: make(map[int]*busModel),
	}
	for _, b := range sys.Buses {
		switch b.Protocol {
		case spec.FullHandshake, spec.HalfHandshake:
		default:
			return nil, fmt.Errorf("verify: bus %s uses protocol %v; the model checker supports full and half handshakes only", b.Name, b.Protocol)
		}
	}
	addGlobal := func(v *spec.Variable, name string) {
		m.gslot[v] = len(m.globals)
		m.globals = append(m.globals, v)
		m.isSignal = append(m.isSignal, v.Kind == spec.KindSignal)
		m.gname = append(m.gname, name)
	}
	for _, g := range sys.Globals {
		addGlobal(g, g.Name)
	}
	for _, mod := range sys.Modules {
		for _, v := range mod.Variables {
			addGlobal(v, mod.Name+"."+v.Name)
		}
	}

	dropFields := cfg.DropFields
	if len(dropFields) == 0 {
		dropFields = []string{"START", "DONE"}
	}
	for _, b := range sys.Buses {
		if b.Signal == nil {
			continue
		}
		slot, ok := m.gslot[b.Signal]
		if !ok {
			return nil, fmt.Errorf("verify: bus %s signal %s is not a global", b.Name, b.Signal.Name)
		}
		rec, ok := b.Signal.Type.(spec.RecordType)
		if !ok {
			continue
		}
		bm := &busModel{
			bus: b, sig: b.Signal, slot: slot, rec: rec,
			start: -1, done: -1, data: -1, id: -1,
			trackBase: m.nTrack,
			trackOf:   make(map[int]int),
			strobe:    make(map[int]bool),
		}
		for i, f := range rec.Fields {
			switch f.Name {
			case "START":
				bm.start = i
			case "DONE":
				bm.done = i
			case "DATA":
				bm.data = i
			case "ID":
				bm.id = i
			default:
				continue
			}
			bm.trackOf[i] = len(bm.trackOf)
			bm.strobe[i] = f.Name == "START" || f.Name == "DONE"
		}
		m.nTrack += len(bm.trackOf)
		m.buses = append(m.buses, bm)
		m.bySlot[slot] = bm
		for _, name := range dropFields {
			for i, f := range rec.Fields {
				if f.Name == name {
					if _, tracked := bm.trackOf[i]; !tracked {
						return nil, fmt.Errorf("verify: drop field %s.%s is not a tracked bus line", b.Signal.Name, name)
					}
					m.drops = append(m.drops, dropTarget{bus: bm, field: i, name: b.Signal.Name + "." + name})
				}
			}
		}
	}

	behs := sys.Behaviors()
	if len(behs) == 0 {
		return nil, fmt.Errorf("verify: system has no behaviors")
	}
	if len(behs) > maxProcs {
		return nil, fmt.Errorf("verify: %d processes exceed the checker's limit of %d", len(behs), maxProcs)
	}
	for i, b := range behs {
		prog, err := m.compile(b)
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		m.progs = append(m.progs, prog)
		if !b.Server {
			m.fgMask |= 1 << uint(i)
		}
	}
	m.buildIndependence()
	return m, nil
}

// buildIndependence computes the static commutation relation from
// whole-program global footprints: p and q are independent when
// neither's writes intersect the other's reads or writes. Coarse but
// sound — a finer per-segment analysis would only shrink the state
// count further.
func (m *machine) buildIndependence() {
	n := len(m.progs)
	m.indep = make([]uint32, n)
	if m.cfg.NoReduction {
		// Empty independence relation: sleep sets stay empty and every
		// interleaving is explored.
		return
	}
	conflict := func(a, b *program) bool {
		for v := range a.writes {
			if b.reads[v] || b.writes[v] {
				return true
			}
		}
		for v := range b.writes {
			if a.reads[v] {
				return true
			}
		}
		return false
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p != q && !conflict(m.progs[p], m.progs[q]) {
				m.indep[p] |= 1 << uint(q)
			}
		}
	}
}

// state is one vertex of the product state space. Values are shared
// between states freely: the executor never mutates a stored value in
// place (bits.Vector operations are persistent and container updates
// rebuild the containers along the path).
type state struct {
	g       []sim.Value
	l       [][]sim.Value
	pc      []int32
	blocked []bool
	fin     []bool
	// rem is the remaining clocks of a blocked process's bounded wait
	// (-1 for none). Relative deadlines, not absolute time: the
	// quiescent tick decrements every positive counter by the minimum,
	// which preserves the simulator's exact timeout ordering.
	rem []int64
	// lastW records, per tracked bus field, the last process that drove
	// it (-1 none) — the state the driver-conflict check needs.
	lastW  []int8
	budget int16 // remaining drop-fault budget
}

func (m *machine) initialState() *state {
	st := &state{
		g:       make([]sim.Value, len(m.globals)),
		l:       make([][]sim.Value, len(m.progs)),
		pc:      make([]int32, len(m.progs)),
		blocked: make([]bool, len(m.progs)),
		fin:     make([]bool, len(m.progs)),
		rem:     make([]int64, len(m.progs)),
		lastW:   make([]int8, m.nTrack),
		budget:  int16(m.cfg.MaxDrops),
	}
	for i, v := range m.globals {
		st.g[i] = sim.InitialValue(v)
	}
	for p, prog := range m.progs {
		st.l[p] = make([]sim.Value, len(prog.locals))
		for i, v := range prog.locals {
			st.l[p][i] = sim.InitialValue(v)
		}
	}
	for p := range st.rem {
		st.rem[p] = -1
	}
	for i := range st.lastW {
		st.lastW[i] = -1
	}
	return st
}

func (s *state) clone() *state {
	ns := &state{
		g:       append([]sim.Value(nil), s.g...),
		l:       make([][]sim.Value, len(s.l)),
		pc:      append([]int32(nil), s.pc...),
		blocked: append([]bool(nil), s.blocked...),
		fin:     append([]bool(nil), s.fin...),
		rem:     append([]int64(nil), s.rem...),
		lastW:   append([]int8(nil), s.lastW...),
		budget:  s.budget,
	}
	for i := range s.l {
		ns.l[i] = append([]sim.Value(nil), s.l[i]...)
	}
	return ns
}

// encode renders the state as a canonical string key for the
// deduplicating store.
func (s *state) encode() string {
	var b strings.Builder
	for _, v := range s.g {
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	for p := range s.l {
		fmt.Fprintf(&b, "#%d:%d:%t:%t:%d;", p, s.pc[p], s.blocked[p], s.fin[p], s.rem[p])
		for _, v := range s.l[p] {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
	}
	for _, w := range s.lastW {
		fmt.Fprintf(&b, "%d,", w)
	}
	fmt.Fprintf(&b, "|%d", s.budget)
	return b.String()
}

// verifyFail is panicked by the executor's Evaluator on runtime errors
// and recovered at the segment boundary.
type verifyFail struct{ err error }

// commitEvent is one signal commit of a segment whose value actually
// changed, recorded for counterexample rendering and drop enumeration.
type commitEvent struct {
	slot    int
	bus     *busModel // nil for plain signals
	changed []int     // changed field indexes (bus signals)
	old     sim.Value
	new     sim.Value
}

// segResult is the outcome of running one process for one atomic
// segment (from its current wait to its next blocking wait).
type segResult struct {
	st        *state
	commits   []commitEvent
	conflicts []string // driver-conflict violation messages
}

// exec runs process p from parent for one atomic segment. The segment
// mirrors one simulator delta slice: signal writes accumulate in a
// pending buffer invisible to reads, waits whose condition already
// holds are passed through inline, and everything commits at the next
// blocking wait (or at process end). parent is not mutated.
func (m *machine) exec(parent *state, p int) (res *segResult, err error) {
	st := parent.clone()
	prog := m.progs[p]
	res = &segResult{st: st}
	pending := make(map[int]sim.Value)
	written := make(map[int]map[int]bool)

	defer func() {
		if r := recover(); r != nil {
			vf, ok := r.(verifyFail)
			if !ok {
				panic(r)
			}
			res, err = nil, fmt.Errorf("verify: process %s: %w", prog.beh.Name, vf.err)
		}
	}()

	ev := sim.Evaluator{
		Lookup: func(v *spec.Variable) sim.Value {
			if i, ok := prog.lslot[v]; ok {
				return st.l[p][i]
			}
			if i, ok := m.gslot[v]; ok {
				// Signal reads see committed values even while this
				// segment has pending writes — the simulator's delta
				// semantics.
				return st.g[i]
			}
			panic(verifyFail{fmt.Errorf("variable %s not in scope", v.Name)})
		},
		Fail: func(format string, args ...any) {
			panic(verifyFail{fmt.Errorf(format, args...)})
		},
	}
	setLocal := func(v *spec.Variable, val sim.Value) {
		i, ok := prog.lslot[v]
		if !ok {
			panic(verifyFail{fmt.Errorf("local %s has no slot", v.Name)})
		}
		st.l[p][i] = sim.Coerce(val, v.Type)
	}
	commit := func() {
		slots := make([]int, 0, len(pending))
		for gi := range pending {
			slots = append(slots, gi)
		}
		sort.Ints(slots)
		for _, gi := range slots {
			old, nv := st.g[gi], pending[gi]
			bm := m.bySlot[gi]
			cev := commitEvent{slot: gi, bus: bm, old: old, new: nv}
			if bm != nil {
				ov, okO := old.(sim.RecordVal)
				nvv, okN := nv.(sim.RecordVal)
				if okO && okN && len(ov.Fields) == len(nvv.Fields) {
					for f := range ov.Fields {
						if !ov.Fields[f].Equal(nvv.Fields[f]) {
							cev.changed = append(cev.changed, f)
						}
					}
					m.checkDrivers(st, p, bm, ov, nvv, written[gi], res)
				}
			} else if !old.Equal(nv) {
				cev.changed = []int{-1}
			}
			st.g[gi] = nv
			if len(cev.changed) > 0 {
				res.commits = append(res.commits, cev)
			}
		}
	}

	// Resume a blocked process: decide (again) whether its wait ended by
	// condition or by timeout, mirroring the simulator's wake logic.
	if st.fin[p] {
		return nil, fmt.Errorf("verify: process %s already finished", prog.beh.Name)
	}
	if st.blocked[p] {
		in := prog.code[st.pc[p]]
		if in.op != opWait {
			return nil, fmt.Errorf("verify: process %s blocked on non-wait instruction", prog.beh.Name)
		}
		w := in.wait
		condMet := w.Until != nil && sim.AsBool(ev.Eval(w.Until))
		if !condMet && st.rem[p] != 0 {
			return nil, fmt.Errorf("verify: process %s resumed while not enabled", prog.beh.Name)
		}
		if w.TimedOut != nil {
			setLocal(w.TimedOut, sim.BoolVal{V: !condMet})
		}
		st.blocked[p] = false
		st.rem[p] = -1
		st.pc[p]++
	}

	steps := 0
	for {
		steps++
		if steps > maxSegmentSteps {
			return nil, fmt.Errorf("verify: process %s executed %d instructions without yielding (runaway zero-delay loop?)", prog.beh.Name, steps)
		}
		in := &prog.code[st.pc[p]]
		switch in.op {
		case opEnd:
			st.fin[p] = true
			commit()
			return res, nil
		case opJump:
			st.pc[p] = in.target
		case opBranch:
			if sim.AsBool(ev.Eval(in.cond)) {
				st.pc[p]++
			} else {
				st.pc[p] = in.target
			}
		case opClear:
			setLocal(in.v, sim.ZeroValue(in.v.Type))
			st.pc[p]++
		case opAssign:
			a := in.assign
			val := ev.Eval(a.RHS)
			base := spec.BaseVar(a.LHS)
			gi, isGlobal := m.gslot[base]
			if isGlobal && m.isSignal[gi] {
				ev.Store(a.LHS, val,
					func(*spec.Variable) sim.Value {
						// Writers build on their own pending value so a
						// later field update cannot revert an earlier one.
						if pv, ok := pending[gi]; ok {
							return pv
						}
						return st.g[gi]
					},
					func(_ *spec.Variable, nv sim.Value) { pending[gi] = nv })
				if bm := m.bySlot[gi]; bm != nil {
					if written[gi] == nil {
						written[gi] = make(map[int]bool)
					}
					markWritten(a.LHS, bm, written[gi])
				}
			} else {
				ev.Store(a.LHS, val,
					func(v *spec.Variable) sim.Value { return ev.Lookup(v) },
					func(v *spec.Variable, nv sim.Value) {
						if i, ok := prog.lslot[v]; ok {
							st.l[p][i] = nv
							return
						}
						if i, ok := m.gslot[v]; ok {
							st.g[i] = nv
							return
						}
						panic(verifyFail{fmt.Errorf("variable %s not writable", v.Name)})
					})
			}
			st.pc[p]++
		case opWait:
			w := in.wait
			if w.Until != nil && sim.AsBool(ev.Eval(w.Until)) {
				// Immediate pass-through without suspending, like the
				// simulator's in-slice check against committed values.
				if w.TimedOut != nil {
					setLocal(w.TimedOut, sim.BoolVal{V: false})
				}
				st.pc[p]++
				continue
			}
			st.blocked[p] = true
			if w.HasFor {
				st.rem[p] = w.For
			} else {
				st.rem[p] = -1
			}
			commit()
			return res, nil
		default:
			return nil, fmt.Errorf("verify: process %s: bad opcode %d", prog.beh.Name, in.op)
		}
	}
}

// dropVariant derives the faulty sibling of a normal successor: the
// wire lost the dropped field's edge, so the committed field reverts to
// its pre-segment value and the fault budget shrinks, while the
// writer's continuation (decided before the commit, exactly like a
// simulator DropEvent fault) stands.
func (m *machine) dropVariant(parent, norm *state, dropField int) *state {
	d := m.drops[dropField]
	slot := d.bus.slot
	ns := norm.clone()
	nv, ok := ns.g[slot].(sim.RecordVal)
	if !ok {
		return ns
	}
	ov := parent.g[slot].(sim.RecordVal)
	fields := append([]sim.Value(nil), nv.Fields...)
	fields[d.field] = ov.Fields[d.field]
	ns.g[slot] = sim.RecordVal{Type: nv.Type, Fields: fields}
	ns.budget--
	return ns
}

// checkDrivers applies the driver mutual-exclusion rules at commit
// time, before lastW is updated to the committing process:
//
//   - a strobe (START/DONE) driven to a nonzero value by p while
//     asserted by another process is a conflict — two drivers
//     asserting one wire. Driving a strobe to zero is a release, which
//     any process may perform: the robust dispatcher deliberately
//     clears stale DONE/NACK lines on re-arm, and a watchdog clearing
//     a sibling server's leftover strobe is recovery, not contention;
//   - DATA or ID written by p while a transaction opened by another
//     process (its START still high) is in flight clobbers lines the
//     opener is entitled to.
//
// Writes are tracked even when the value does not change: driving an
// already-high strobe high is still a second driver.
func (m *machine) checkDrivers(st *state, p int, bm *busModel, old, nv sim.RecordVal, written map[int]bool, res *segResult) {
	fields := make([]int, 0, len(written))
	for f := range written {
		fields = append(fields, f)
	}
	sort.Ints(fields)
	name := func(f int) string { return bm.sig.Name + "." + bm.rec.Fields[f].Name }
	for _, f := range fields {
		ti, tracked := bm.trackOf[f]
		if !tracked {
			continue
		}
		li := bm.trackBase + ti
		last := st.lastW[li]
		if bm.strobe[f] {
			if last >= 0 && int(last) != p && !valIsZero(old.Fields[f]) && !valIsZero(nv.Fields[f]) {
				res.conflicts = append(res.conflicts, fmt.Sprintf(
					"driver conflict on %s: %s drives it while %s holds it asserted",
					name(f), m.progs[p].beh.Name, m.progs[last].beh.Name))
			}
		} else if bm.start >= 0 && !valIsZero(old.Fields[bm.start]) {
			sl := st.lastW[bm.trackBase+bm.trackOf[bm.start]]
			if sl >= 0 && int(sl) != p {
				res.conflicts = append(res.conflicts, fmt.Sprintf(
					"driver conflict on %s: %s drives it during a transaction opened by %s",
					name(f), m.progs[p].beh.Name, m.progs[sl].beh.Name))
			}
		}
		st.lastW[li] = int8(p)
	}
}

// markWritten records which tracked bus fields an assignment drives. A
// whole-record assignment drives every field.
func markWritten(lhs spec.Expr, bm *busModel, set map[int]bool) {
	for {
		switch l := lhs.(type) {
		case *spec.VarRef:
			for f := range bm.trackOf {
				set[f] = true
			}
			return
		case *spec.FieldRef:
			if _, ok := l.X.(*spec.VarRef); ok {
				for i, f := range bm.rec.Fields {
					if f.Name == l.Field {
						set[i] = true
					}
				}
				return
			}
			lhs = l.X
		case *spec.SliceExpr:
			lhs = l.X
		case *spec.Index:
			lhs = l.Arr
		default:
			return
		}
	}
}

func valIsZero(v sim.Value) bool {
	switch v := v.(type) {
	case sim.VecVal:
		return v.V.IsZero()
	case sim.IntVal:
		return v.V == 0
	case sim.BoolVal:
		return !v.V
	}
	return false
}

// enabledMask computes which processes may take a transition from st: a
// runnable process, a blocked process whose wait condition holds, or a
// blocked process whose bounded wait has expired (rem == 0).
func (m *machine) enabledMask(st *state) (uint32, error) {
	var mask uint32
	for p, prog := range m.progs {
		if st.fin[p] {
			continue
		}
		if !st.blocked[p] {
			mask |= 1 << uint(p)
			continue
		}
		w := prog.code[st.pc[p]].wait
		if w.Until != nil {
			ok, err := m.evalCond(st, p, w.Until)
			if err != nil {
				return 0, err
			}
			if ok {
				mask |= 1 << uint(p)
				continue
			}
		}
		if st.rem[p] == 0 {
			mask |= 1 << uint(p)
		}
	}
	return mask, nil
}

func (m *machine) evalCond(st *state, p int, cond spec.Expr) (ok bool, err error) {
	prog := m.progs[p]
	defer func() {
		if r := recover(); r != nil {
			vf, isVF := r.(verifyFail)
			if !isVF {
				panic(r)
			}
			ok, err = false, fmt.Errorf("verify: process %s: %w", prog.beh.Name, vf.err)
		}
	}()
	ev := sim.Evaluator{
		Lookup: func(v *spec.Variable) sim.Value {
			if i, okL := prog.lslot[v]; okL {
				return st.l[p][i]
			}
			if i, okG := m.gslot[v]; okG {
				return st.g[i]
			}
			panic(verifyFail{fmt.Errorf("variable %s not in scope", v.Name)})
		},
		Fail: func(format string, args ...any) {
			panic(verifyFail{fmt.Errorf(format, args...)})
		},
	}
	return sim.AsBool(ev.Eval(cond)), nil
}

// tick advances quiescent time: with no process enabled, the minimum
// positive remaining-clock counter elapses from every bounded wait.
// Deterministic — a single successor — so timeouts fire in exactly the
// relative order the simulator would fire them.
func (m *machine) tick(st *state) (*state, int64, bool) {
	min := int64(-1)
	for p := range m.progs {
		if st.blocked[p] && !st.fin[p] && st.rem[p] > 0 {
			if min < 0 || st.rem[p] < min {
				min = st.rem[p]
			}
		}
	}
	if min < 0 {
		return nil, 0, false
	}
	ns := st.clone()
	for p := range m.progs {
		if ns.blocked[p] && !ns.fin[p] && ns.rem[p] > 0 {
			ns.rem[p] -= min
		}
	}
	return ns, min, true
}

// open reports whether any tracked strobe is asserted — a transaction
// is in flight. The bounded-response liveness check looks for cycles
// that never leave open states.
func (m *machine) open(st *state) bool {
	for _, bm := range m.buses {
		rv, ok := st.g[bm.slot].(sim.RecordVal)
		if !ok {
			continue
		}
		for f, isStrobe := range bm.strobe {
			if isStrobe && !valIsZero(rv.Fields[f]) {
				return true
			}
		}
	}
	return false
}

// describeState renders a blocked-process summary plus the bus lines,
// mirroring sim.DeadlockError diagnostics.
func (m *machine) describeState(st *state) string {
	var waiting []string
	for p, prog := range m.progs {
		if st.fin[p] {
			continue
		}
		name := prog.beh.Name
		if prog.beh.Server {
			name += " (server)"
		}
		if st.blocked[p] {
			w := prog.code[st.pc[p]].wait
			desc := ""
			if w.Until != nil {
				desc = "until " + w.Until.String()
			}
			if w.HasFor {
				desc += fmt.Sprintf(" (rem %d)", st.rem[p])
			}
			waiting = append(waiting, name+": wait "+strings.TrimSpace(desc))
		} else {
			waiting = append(waiting, name+": runnable")
		}
	}
	out := strings.Join(waiting, "; ")
	var lines []string
	for _, bm := range m.buses {
		rv, ok := st.g[bm.slot].(sim.RecordVal)
		if !ok {
			continue
		}
		for i, f := range bm.rec.Fields {
			if f.Name == "DATA" {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s.%s=%s", bm.sig.Name, f.Name, rv.Fields[i]))
		}
	}
	if len(lines) > 0 {
		out += "; bus: " + strings.Join(lines, " ")
	}
	return out
}
