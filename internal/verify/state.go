package verify

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/spec"
)

// maxProcs bounds the number of processes so enabled/sleep sets fit a
// uint32 mask.
const maxProcs = 30

// maxSegmentSteps bounds the instructions one atomic segment may
// execute (a runaway zero-delay loop would otherwise hang the checker).
const maxSegmentSteps = 200_000

// machine is the compiled product system: one program per process plus
// the global storage layout and the bus-line bookkeeping the checks
// need.
type machine struct {
	sys   *spec.System
	cfg   Config
	progs []*program
	// Global storage slots: sys.Globals first, then module variables in
	// module order. Signals and shared variables live side by side; the
	// executor distinguishes them via isSignal.
	globals  []*spec.Variable
	gslot    map[*spec.Variable]int
	isSignal []bool
	gname    []string // "Module.Var" for module variables, plain name for globals
	buses    []*busModel
	bySlot   map[int]*busModel
	drops    []dropTarget
	nTrack   int // total tracked bus fields (lastW width)
	// indep[p] has bit q set when p and q have disjoint-enough global
	// footprints to commute (neither writes what the other touches).
	indep  []uint32
	fgMask uint32 // non-server processes
	// Delivery check inputs (from the golden fault-free simulation).
	expected   []sim.Value // per gslot; nil entries unchecked
	abortSlots []int
	// pool recycles state shells (the top-level slices of states that
	// were deduplicated away). Only cloneShared allocates states, so
	// every pooled shell has this machine's exact slice lengths.
	pool sync.Pool
}

// busModel is the checker's view of one generated bus: which record
// fields carry the handshake strobes and the shared payload lines.
type busModel struct {
	bus  *spec.Bus
	sig  *spec.Variable
	slot int
	rec  spec.RecordType
	// Field indexes into the record; -1 when absent.
	start, done, data, id int
	// trackBase is this bus's offset into state.lastW; trackOf maps a
	// tracked field index to its offset.
	trackBase int
	trackOf   map[int]int
	strobe    map[int]bool
}

// dropTarget is one fault-injection point: a droppable transition of a
// tracked bus field.
type dropTarget struct {
	bus   *busModel
	field int
	name  string // "B.START"
}

func newMachine(sys *spec.System, cfg Config) (*machine, error) {
	m := &machine{
		sys:    sys,
		cfg:    cfg,
		gslot:  make(map[*spec.Variable]int),
		bySlot: make(map[int]*busModel),
	}
	for _, b := range sys.Buses {
		switch b.Protocol {
		case spec.FullHandshake, spec.HalfHandshake:
		default:
			return nil, fmt.Errorf("verify: bus %s uses protocol %v; the model checker supports full and half handshakes only", b.Name, b.Protocol)
		}
	}
	addGlobal := func(v *spec.Variable, name string) {
		m.gslot[v] = len(m.globals)
		m.globals = append(m.globals, v)
		m.isSignal = append(m.isSignal, v.Kind == spec.KindSignal)
		m.gname = append(m.gname, name)
	}
	for _, g := range sys.Globals {
		addGlobal(g, g.Name)
	}
	for _, mod := range sys.Modules {
		for _, v := range mod.Variables {
			addGlobal(v, mod.Name+"."+v.Name)
		}
	}

	dropFields := cfg.DropFields
	if len(dropFields) == 0 {
		dropFields = []string{"START", "DONE"}
	}
	for _, b := range sys.Buses {
		if b.Signal == nil {
			continue
		}
		slot, ok := m.gslot[b.Signal]
		if !ok {
			return nil, fmt.Errorf("verify: bus %s signal %s is not a global", b.Name, b.Signal.Name)
		}
		rec, ok := b.Signal.Type.(spec.RecordType)
		if !ok {
			continue
		}
		bm := &busModel{
			bus: b, sig: b.Signal, slot: slot, rec: rec,
			start: -1, done: -1, data: -1, id: -1,
			trackBase: m.nTrack,
			trackOf:   make(map[int]int),
			strobe:    make(map[int]bool),
		}
		for i, f := range rec.Fields {
			switch f.Name {
			case "START":
				bm.start = i
			case "DONE":
				bm.done = i
			case "DATA":
				bm.data = i
			case "ID":
				bm.id = i
			default:
				continue
			}
			bm.trackOf[i] = len(bm.trackOf)
			bm.strobe[i] = f.Name == "START" || f.Name == "DONE"
		}
		m.nTrack += len(bm.trackOf)
		m.buses = append(m.buses, bm)
		m.bySlot[slot] = bm
		for _, name := range dropFields {
			for i, f := range rec.Fields {
				if f.Name == name {
					if _, tracked := bm.trackOf[i]; !tracked {
						return nil, fmt.Errorf("verify: drop field %s.%s is not a tracked bus line", b.Signal.Name, name)
					}
					m.drops = append(m.drops, dropTarget{bus: bm, field: i, name: b.Signal.Name + "." + name})
				}
			}
		}
	}

	behs := sys.Behaviors()
	if len(behs) == 0 {
		return nil, fmt.Errorf("verify: system has no behaviors")
	}
	if len(behs) > maxProcs {
		return nil, fmt.Errorf("verify: %d processes exceed the checker's limit of %d", len(behs), maxProcs)
	}
	for i, b := range behs {
		prog, err := m.compile(b)
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		m.progs = append(m.progs, prog)
		if !b.Server {
			m.fgMask |= 1 << uint(i)
		}
	}
	m.buildIndependence()
	return m, nil
}

// buildIndependence computes the static commutation relation from
// whole-program global footprints: p and q are independent when
// neither's writes intersect the other's reads or writes. Coarse but
// sound — a finer per-segment analysis would only shrink the state
// count further.
func (m *machine) buildIndependence() {
	n := len(m.progs)
	m.indep = make([]uint32, n)
	if m.cfg.NoReduction {
		// Empty independence relation: sleep sets stay empty and every
		// interleaving is explored.
		return
	}
	conflict := func(a, b *program) bool {
		for v := range a.writes {
			if b.reads[v] || b.writes[v] {
				return true
			}
		}
		for v := range b.writes {
			if a.reads[v] {
				return true
			}
		}
		return false
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p != q && !conflict(m.progs[p], m.progs[q]) {
				m.indep[p] |= 1 << uint(q)
			}
		}
	}
}

// state is one vertex of the product state space. Values are shared
// between states freely: the executor never mutates a stored value in
// place (bits.Vector operations are persistent and container updates
// rebuild the containers along the path). The same invariant extends
// one level up to whole per-process local slices: cloneShared aliases
// the inner l[q] slices between parent and child, and the executor
// replaces l[p] with a fresh copy before the running process writes a
// local, so an inner slice is never mutated once any other state can
// see it. Top-level slices (g, l, pc, blocked, fin, rem, lastW) are
// always exclusively owned — that is what makes shells recyclable.
type state struct {
	g []sim.Value
	l [][]sim.Value
	// ps packs each process's scalar bookkeeping into one slice (one
	// allocation and one memmove per clone instead of four).
	ps []procState
	// lastW records, per tracked bus field, the last process that drove
	// it (-1 none) — the state the driver-conflict check needs.
	lastW  []int8
	budget int16 // remaining drop-fault budget
}

// procState is one process's control scalars.
type procState struct {
	pc      int32
	blocked bool
	fin     bool
	// rem is the remaining clocks of a blocked process's bounded wait
	// (-1 for none). Relative deadlines, not absolute time: the
	// quiescent tick decrements every positive counter by the minimum,
	// which preserves the simulator's exact timeout ordering.
	rem int64
}

func (m *machine) initialState() *state {
	st := &state{
		g:      make([]sim.Value, len(m.globals)),
		l:      make([][]sim.Value, len(m.progs)),
		ps:     make([]procState, len(m.progs)),
		lastW:  make([]int8, m.nTrack),
		budget: int16(m.cfg.MaxDrops),
	}
	for i, v := range m.globals {
		st.g[i] = sim.InitialValue(v)
	}
	for p, prog := range m.progs {
		st.l[p] = make([]sim.Value, len(prog.locals))
		for i, v := range prog.locals {
			st.l[p][i] = sim.InitialValue(v)
		}
	}
	for p := range st.ps {
		st.ps[p].rem = -1
	}
	for i := range st.lastW {
		st.lastW[i] = -1
	}
	return st
}

// cloneShared derives a copy-on-write child of s: every top-level
// slice is copied (so the child may overwrite pc/rem/g/lastW entries
// and swap whole local slices freely), but the inner per-process local
// slices are shared with the parent. Writers must replace l[p] with a
// fresh copy before touching a local — exec does exactly that for the
// single process it runs.
func (m *machine) cloneShared(s *state) *state {
	ns, ok := m.pool.Get().(*state)
	if !ok {
		ns = &state{
			g:     make([]sim.Value, len(s.g)),
			l:     make([][]sim.Value, len(s.l)),
			ps:    make([]procState, len(s.ps)),
			lastW: make([]int8, len(s.lastW)),
		}
	}
	copy(ns.g, s.g)
	copy(ns.l, s.l) // inner slices aliased — see the state doc comment
	copy(ns.ps, s.ps)
	copy(ns.lastW, s.lastW)
	ns.budget = s.budget
	return ns
}

// release returns a deduplicated-away state's shell to the pool. Legal
// only for states produced by cloneShared that no node, edge or pending
// drop variant references: the top-level slices will be overwritten by
// the next cloneShared, while the (possibly shared) inner local slices
// are left untouched.
func (m *machine) release(st *state) {
	if st != nil {
		m.pool.Put(st)
	}
}

// encode renders the state as a canonical string key. It is the legacy
// store key, retained as the oracle for the binary codec's equivalence
// test (codec_test.go) and the baseline the benchmarks compare against;
// the searcher itself now keys on encodeInto (codec.go).
func (s *state) encode() string {
	var b strings.Builder
	for _, v := range s.g {
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	for p := range s.l {
		fmt.Fprintf(&b, "#%d:%d:%t:%t:%d;", p, s.ps[p].pc, s.ps[p].blocked, s.ps[p].fin, s.ps[p].rem)
		for _, v := range s.l[p] {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
	}
	for _, w := range s.lastW {
		fmt.Fprintf(&b, "%d,", w)
	}
	fmt.Fprintf(&b, "|%d", s.budget)
	return b.String()
}

// verifyFail is panicked by the executor's Evaluator on runtime errors
// and recovered at the segment boundary.
type verifyFail struct{ err error }

// commitEvent is one signal commit of a segment whose value actually
// changed, recorded for counterexample rendering and drop enumeration.
type commitEvent struct {
	slot int
	bus  *busModel // nil for plain signals
	// changed is a bitmask of the changed record field indexes (bus
	// signals; fields past 63 are untracked, like checkDrivers), or any
	// nonzero marker for a changed plain signal.
	changed uint64
	old     sim.Value
	new     sim.Value
}

// segResult is the outcome of running one process for one atomic
// segment (from its current wait to its next blocking wait).
type segResult struct {
	st        *state
	commits   []commitEvent
	conflicts []string // driver-conflict violation messages
}

// pendingWrite is one signal slot's accumulated segment write: the
// value visible to later writes (not reads) of the same segment, plus
// the record-field bits the segment's assignments drove. A segment
// touches at most a handful of slots, so a linear slice beats the maps
// this replaced.
type pendingWrite struct {
	slot   int
	val    sim.Value
	fields uint64
}

// execCtx is a worker's reusable segment-execution context: the pending
// and commit scratch buffers plus an Evaluator whose closures are bound
// once to the ctx instead of being rebuilt per call, so repeated
// exec/evalCond calls allocate nothing beyond the successor states they
// produce. Not safe for concurrent use — each worker (and each
// sequential caller) owns its own.
type execCtx struct {
	m       *machine
	st      *state
	p       int
	prog    *program
	pending []pendingWrite
	res     segResult
	gi      int // signal slot the current Store call targets
	ev      sim.Evaluator
	// Store callbacks, bound once. sig* accumulate into the pending
	// buffer (delta semantics); mem* write through directly.
	sigLoad  func(*spec.Variable) sim.Value
	sigStore func(*spec.Variable, sim.Value)
	memLoad  func(*spec.Variable) sim.Value
	memStore func(*spec.Variable, sim.Value)
}

func (m *machine) newExecCtx() *execCtx {
	ec := &execCtx{m: m}
	ec.ev = sim.Evaluator{
		Lookup: func(v *spec.Variable) sim.Value {
			if i, ok := ec.prog.lslot[v]; ok {
				return ec.st.l[ec.p][i]
			}
			if i, ok := m.gslot[v]; ok {
				// Signal reads see committed values even while this
				// segment has pending writes — the simulator's delta
				// semantics.
				return ec.st.g[i]
			}
			panic(verifyFail{fmt.Errorf("variable %s not in scope", v.Name)})
		},
		Fail: func(format string, args ...any) {
			panic(verifyFail{fmt.Errorf(format, args...)})
		},
	}
	ec.sigLoad = func(*spec.Variable) sim.Value {
		// Writers build on their own pending value so a later field
		// update cannot revert an earlier one.
		if pw := ec.findPending(ec.gi); pw != nil {
			return pw.val
		}
		return ec.st.g[ec.gi]
	}
	ec.sigStore = func(_ *spec.Variable, nv sim.Value) {
		if pw := ec.findPending(ec.gi); pw != nil {
			pw.val = nv
			return
		}
		ec.pending = append(ec.pending, pendingWrite{slot: ec.gi, val: nv})
	}
	ec.memLoad = func(v *spec.Variable) sim.Value { return ec.ev.Lookup(v) }
	ec.memStore = func(v *spec.Variable, nv sim.Value) {
		if i, ok := ec.prog.lslot[v]; ok {
			ec.st.l[ec.p][i] = nv
			return
		}
		if i, ok := m.gslot[v]; ok {
			ec.st.g[i] = nv
			return
		}
		panic(verifyFail{fmt.Errorf("variable %s not writable", v.Name)})
	}
	return ec
}

func (ec *execCtx) findPending(gi int) *pendingWrite {
	for i := range ec.pending {
		if ec.pending[i].slot == gi {
			return &ec.pending[i]
		}
	}
	return nil
}

func (ec *execCtx) setLocal(v *spec.Variable, val sim.Value) {
	i, ok := ec.prog.lslot[v]
	if !ok {
		panic(verifyFail{fmt.Errorf("local %s has no slot", v.Name)})
	}
	ec.st.l[ec.p][i] = sim.Coerce(val, v.Type)
}

// commit applies the pending signal writes slot-ordered, as the
// simulator commits: insertion sort — the pending list rarely exceeds
// two slots.
func (ec *execCtx) commit() {
	m, st, pending := ec.m, ec.st, ec.pending
	for i := 1; i < len(pending); i++ {
		for j := i; j > 0 && pending[j].slot < pending[j-1].slot; j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	for i := range pending {
		pw := &pending[i]
		gi := pw.slot
		old, nv := st.g[gi], pw.val
		bm := m.bySlot[gi]
		cev := commitEvent{slot: gi, bus: bm, old: old, new: nv}
		if bm != nil {
			ov, okO := old.(sim.RecordVal)
			nvv, okN := nv.(sim.RecordVal)
			if okO && okN && len(ov.Fields) == len(nvv.Fields) {
				for f := 0; f < len(ov.Fields) && f < 64; f++ {
					if !ov.Fields[f].Equal(nvv.Fields[f]) {
						cev.changed |= 1 << uint(f)
					}
				}
				m.checkDrivers(st, ec.p, bm, ov, nvv, pw.fields, &ec.res)
			}
		} else if !old.Equal(nv) {
			cev.changed = 1
		}
		st.g[gi] = nv
		if cev.changed != 0 {
			ec.res.commits = append(ec.res.commits, cev)
		}
	}
}

// exec runs process p from parent for one atomic segment. The segment
// mirrors one simulator delta slice: signal writes accumulate in a
// pending buffer invisible to reads, waits whose condition already
// holds are passed through inline, and everything commits at the next
// blocking wait (or at process end). parent is not mutated. The
// returned result lives inside ec — its commits backing is reused by
// the ctx's next exec, so callers must consume it first (conflicts are
// freshly allocated and safe to retain).
func (m *machine) exec(ec *execCtx, parent *state, p int) (res *segResult, err error) {
	st := m.cloneShared(parent)
	// Copy-on-write: only process p's locals can be written this
	// segment, so give p a private slice and keep sharing the rest.
	st.l[p] = append(make([]sim.Value, 0, len(parent.l[p])), parent.l[p]...)
	prog := m.progs[p]
	ec.st, ec.p, ec.prog = st, p, prog
	ec.pending = ec.pending[:0]
	ec.res = segResult{st: st, commits: ec.res.commits[:0]}
	res = &ec.res

	defer func() {
		if r := recover(); r != nil {
			vf, ok := r.(verifyFail)
			if !ok {
				panic(r)
			}
			res, err = nil, fmt.Errorf("verify: process %s: %w", prog.beh.Name, vf.err)
		}
	}()

	// Resume a blocked process: decide (again) whether its wait ended by
	// condition or by timeout, mirroring the simulator's wake logic.
	if st.ps[p].fin {
		return nil, fmt.Errorf("verify: process %s already finished", prog.beh.Name)
	}
	if st.ps[p].blocked {
		in := prog.code[st.ps[p].pc]
		if in.op != opWait {
			return nil, fmt.Errorf("verify: process %s blocked on non-wait instruction", prog.beh.Name)
		}
		w := in.wait
		condMet := w.Until != nil && sim.AsBool(ec.ev.Eval(w.Until))
		if !condMet && st.ps[p].rem != 0 {
			return nil, fmt.Errorf("verify: process %s resumed while not enabled", prog.beh.Name)
		}
		if w.TimedOut != nil {
			ec.setLocal(w.TimedOut, sim.BoolVal{V: !condMet})
		}
		st.ps[p].blocked = false
		st.ps[p].rem = -1
		st.ps[p].pc++
	}

	steps := 0
	for {
		steps++
		if steps > maxSegmentSteps {
			return nil, fmt.Errorf("verify: process %s executed %d instructions without yielding (runaway zero-delay loop?)", prog.beh.Name, steps)
		}
		in := &prog.code[st.ps[p].pc]
		switch in.op {
		case opEnd:
			st.ps[p].fin = true
			ec.commit()
			return res, nil
		case opJump:
			st.ps[p].pc = in.target
		case opBranch:
			if sim.AsBool(ec.ev.Eval(in.cond)) {
				st.ps[p].pc++
			} else {
				st.ps[p].pc = in.target
			}
		case opClear:
			ec.setLocal(in.v, sim.ZeroValue(in.v.Type))
			st.ps[p].pc++
		case opAssign:
			a := in.assign
			val := ec.ev.Eval(a.RHS)
			base := spec.BaseVar(a.LHS)
			gi, isGlobal := m.gslot[base]
			if isGlobal && m.isSignal[gi] {
				ec.gi = gi
				ec.ev.Store(a.LHS, val, ec.sigLoad, ec.sigStore)
				if bm := m.bySlot[gi]; bm != nil {
					if pw := ec.findPending(gi); pw != nil {
						pw.fields |= writtenMask(a.LHS, bm)
					}
				}
			} else {
				ec.ev.Store(a.LHS, val, ec.memLoad, ec.memStore)
			}
			st.ps[p].pc++
		case opWait:
			w := in.wait
			if w.Until != nil && sim.AsBool(ec.ev.Eval(w.Until)) {
				// Immediate pass-through without suspending, like the
				// simulator's in-slice check against committed values.
				if w.TimedOut != nil {
					ec.setLocal(w.TimedOut, sim.BoolVal{V: false})
				}
				st.ps[p].pc++
				continue
			}
			st.ps[p].blocked = true
			if w.HasFor {
				st.ps[p].rem = w.For
			} else {
				st.ps[p].rem = -1
			}
			ec.commit()
			return res, nil
		default:
			return nil, fmt.Errorf("verify: process %s: bad opcode %d", prog.beh.Name, in.op)
		}
	}
}

// dropVariant derives the faulty sibling of a normal successor: the
// wire lost the dropped field's edge, so the committed field reverts to
// its pre-segment value and the fault budget shrinks, while the
// writer's continuation (decided before the commit, exactly like a
// simulator DropEvent fault) stands.
func (m *machine) dropVariant(parent, norm *state, dropField int) *state {
	d := m.drops[dropField]
	slot := d.bus.slot
	ns := m.cloneShared(norm)
	nv, ok := ns.g[slot].(sim.RecordVal)
	if !ok {
		return ns
	}
	ov := parent.g[slot].(sim.RecordVal)
	fields := append([]sim.Value(nil), nv.Fields...)
	fields[d.field] = ov.Fields[d.field]
	ns.g[slot] = sim.RecordVal{Type: nv.Type, Fields: fields}
	ns.budget--
	return ns
}

// checkDrivers applies the driver mutual-exclusion rules at commit
// time, before lastW is updated to the committing process:
//
//   - a strobe (START/DONE) driven to a nonzero value by p while
//     asserted by another process is a conflict — two drivers
//     asserting one wire. Driving a strobe to zero is a release, which
//     any process may perform: the robust dispatcher deliberately
//     clears stale DONE/NACK lines on re-arm, and a watchdog clearing
//     a sibling server's leftover strobe is recovery, not contention;
//   - DATA or ID written by p while a transaction opened by another
//     process (its START still high) is in flight clobbers lines the
//     opener is entitled to.
//
// Writes are tracked even when the value does not change: driving an
// already-high strobe high is still a second driver.
func (m *machine) checkDrivers(st *state, p int, bm *busModel, old, nv sim.RecordVal, written uint64, res *segResult) {
	name := func(f int) string { return bm.sig.Name + "." + bm.rec.Fields[f].Name }
	for f := 0; f < len(bm.rec.Fields) && f < 64; f++ {
		if written&(1<<uint(f)) == 0 {
			continue
		}
		ti, tracked := bm.trackOf[f]
		if !tracked {
			continue
		}
		li := bm.trackBase + ti
		last := st.lastW[li]
		if bm.strobe[f] {
			if last >= 0 && int(last) != p && !valIsZero(old.Fields[f]) && !valIsZero(nv.Fields[f]) {
				res.conflicts = append(res.conflicts, fmt.Sprintf(
					"driver conflict on %s: %s drives it while %s holds it asserted",
					name(f), m.progs[p].beh.Name, m.progs[last].beh.Name))
			}
		} else if bm.start >= 0 && !valIsZero(old.Fields[bm.start]) {
			sl := st.lastW[bm.trackBase+bm.trackOf[bm.start]]
			if sl >= 0 && int(sl) != p {
				res.conflicts = append(res.conflicts, fmt.Sprintf(
					"driver conflict on %s: %s drives it during a transaction opened by %s",
					name(f), m.progs[p].beh.Name, m.progs[sl].beh.Name))
			}
		}
		st.lastW[li] = int8(p)
	}
}

// writtenMask returns the field bits an assignment drives. A
// whole-record assignment drives every tracked field.
func writtenMask(lhs spec.Expr, bm *busModel) uint64 {
	for {
		switch l := lhs.(type) {
		case *spec.VarRef:
			var mask uint64
			for f := range bm.trackOf {
				mask |= 1 << uint(f)
			}
			return mask
		case *spec.FieldRef:
			if _, ok := l.X.(*spec.VarRef); ok {
				var mask uint64
				for i, f := range bm.rec.Fields {
					if f.Name == l.Field {
						mask |= 1 << uint(i)
					}
				}
				return mask
			}
			lhs = l.X
		case *spec.SliceExpr:
			lhs = l.X
		case *spec.Index:
			lhs = l.Arr
		default:
			return 0
		}
	}
}

func valIsZero(v sim.Value) bool {
	switch v := v.(type) {
	case sim.VecVal:
		return v.V.IsZero()
	case sim.IntVal:
		return v.V == 0
	case sim.BoolVal:
		return !v.V
	}
	return false
}

// enabledMask computes which processes may take a transition from st: a
// runnable process, a blocked process whose wait condition holds, or a
// blocked process whose bounded wait has expired (rem == 0).
func (m *machine) enabledMask(ec *execCtx, st *state) (uint32, error) {
	var mask uint32
	for p, prog := range m.progs {
		if st.ps[p].fin {
			continue
		}
		if !st.ps[p].blocked {
			mask |= 1 << uint(p)
			continue
		}
		w := prog.code[st.ps[p].pc].wait
		if w.Until != nil {
			ok, err := m.evalCond(ec, st, p, w.Until)
			if err != nil {
				return 0, err
			}
			if ok {
				mask |= 1 << uint(p)
				continue
			}
		}
		if st.ps[p].rem == 0 {
			mask |= 1 << uint(p)
		}
	}
	return mask, nil
}

// evalCond evaluates a wait condition against st through ec's bound
// evaluator (reads only — ec's pending buffer is never consulted by
// Lookup, so a ctx fresh from exec is safe to reuse here).
func (m *machine) evalCond(ec *execCtx, st *state, p int, cond spec.Expr) (ok bool, err error) {
	prog := m.progs[p]
	defer func() {
		if r := recover(); r != nil {
			vf, isVF := r.(verifyFail)
			if !isVF {
				panic(r)
			}
			ok, err = false, fmt.Errorf("verify: process %s: %w", prog.beh.Name, vf.err)
		}
	}()
	ec.st, ec.p, ec.prog = st, p, prog
	return sim.AsBool(ec.ev.Eval(cond)), nil
}

// tick advances quiescent time: with no process enabled, the minimum
// positive remaining-clock counter elapses from every bounded wait.
// Deterministic — a single successor — so timeouts fire in exactly the
// relative order the simulator would fire them.
func (m *machine) tick(st *state) (*state, int64, bool) {
	min := int64(-1)
	for p := range m.progs {
		if st.ps[p].blocked && !st.ps[p].fin && st.ps[p].rem > 0 {
			if min < 0 || st.ps[p].rem < min {
				min = st.ps[p].rem
			}
		}
	}
	if min < 0 {
		return nil, 0, false
	}
	ns := m.cloneShared(st)
	for p := range m.progs {
		if ns.ps[p].blocked && !ns.ps[p].fin && ns.ps[p].rem > 0 {
			ns.ps[p].rem -= min
		}
	}
	return ns, min, true
}

// open reports whether any tracked strobe is asserted — a transaction
// is in flight. The bounded-response liveness check looks for cycles
// that never leave open states.
func (m *machine) open(st *state) bool {
	for _, bm := range m.buses {
		rv, ok := st.g[bm.slot].(sim.RecordVal)
		if !ok {
			continue
		}
		for f, isStrobe := range bm.strobe {
			if isStrobe && !valIsZero(rv.Fields[f]) {
				return true
			}
		}
	}
	return false
}

// describeState renders a blocked-process summary plus the bus lines,
// mirroring sim.DeadlockError diagnostics.
func (m *machine) describeState(st *state) string {
	var waiting []string
	for p, prog := range m.progs {
		if st.ps[p].fin {
			continue
		}
		name := prog.beh.Name
		if prog.beh.Server {
			name += " (server)"
		}
		if st.ps[p].blocked {
			w := prog.code[st.ps[p].pc].wait
			desc := ""
			if w.Until != nil {
				desc = "until " + w.Until.String()
			}
			if w.HasFor {
				desc += fmt.Sprintf(" (rem %d)", st.ps[p].rem)
			}
			waiting = append(waiting, name+": wait "+strings.TrimSpace(desc))
		} else {
			waiting = append(waiting, name+": runnable")
		}
	}
	out := strings.Join(waiting, "; ")
	var lines []string
	for _, bm := range m.buses {
		rv, ok := st.g[bm.slot].(sim.RecordVal)
		if !ok {
			continue
		}
		for i, f := range bm.rec.Fields {
			if f.Name == "DATA" {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s.%s=%s", bm.sig.Name, f.Name, rv.Fields[i]))
		}
	}
	if len(lines) > 0 {
		out += "; bus: " + strings.Join(lines, " ")
	}
	return out
}
