// Package verify is an exhaustive, bounded model checker for the
// protocol processes that protocol generation emits. It compiles each
// behavior of a refined system into a flat communicating FSM, explores
// the product state space with a parallel breadth-first search over a
// deduplicating state store (with a sleep-set partial-order reduction),
// and checks deadlock-freedom, driver mutual exclusion on shared bus
// lines, bounded-response liveness and end-to-end data delivery. Any
// violation is reported with a minimal interleaving Counterexample that
// replays deterministically through internal/sim.
//
// The checker interprets specification statements with the simulator's
// own sim.Evaluator, so expression and assignment semantics cannot
// drift between the two engines. Its scheduling model is a sound
// abstraction of the simulator's: within a delta cycle any enabled
// process may run next (the checker branches over all of them, a
// superset of the simulator's fixed process order), while relative
// timeout ordering is preserved exactly by per-process remaining-clock
// counters and a deterministic quiescent tick.
package verify

import (
	"fmt"

	"repro/internal/spec"
)

// opcode is the instruction set of a compiled behavior. Control flow is
// flattened to branches so a process's continuation is a single program
// counter — the only control state that must live in the product state.
type opcode uint8

const (
	opAssign opcode = iota // execute assign.LHS := assign.RHS
	opBranch               // fall through when cond holds, else jump to target
	opJump                 // jump to target
	opClear                // reset local v to its zero value (inlined call entry)
	opWait                 // block on wait (bounded or condition wait)
	opEnd                  // process finished
)

type instr struct {
	op     opcode
	assign *spec.Assign
	cond   spec.Expr
	target int32
	wait   *spec.Wait
	v      *spec.Variable
}

// program is one behavior compiled to a flat FSM. Locals (behavior
// variables, inlined procedure parameters and locals, loop and timeout
// scratch variables) occupy fixed slots; reads/writes record the
// *global* footprint used for the independence relation of the
// partial-order reduction.
type program struct {
	beh    *spec.Behavior
	code   []instr
	locals []*spec.Variable
	lslot  map[*spec.Variable]int
	reads  map[*spec.Variable]bool
	writes map[*spec.Variable]bool
	temps  int
}

type compiler struct {
	m    *machine
	prog *program
	// exits / rets collect forward jumps awaiting their target: one
	// patch list per enclosing loop (Exit) and per inlined call
	// (Return); endRefs collects top-level Returns.
	exits   [][]int
	rets    [][]int
	endRefs []int
	active  map[*spec.Procedure]bool
	err     error
}

func (m *machine) compile(beh *spec.Behavior) (*program, error) {
	prog := &program{
		beh:    beh,
		lslot:  make(map[*spec.Variable]int),
		reads:  make(map[*spec.Variable]bool),
		writes: make(map[*spec.Variable]bool),
	}
	c := &compiler{m: m, prog: prog, active: make(map[*spec.Procedure]bool)}
	for _, v := range beh.Variables {
		c.addLocal(v)
	}
	c.stmts(beh.Body)
	end := c.emit(instr{op: opEnd})
	for _, at := range c.endRefs {
		prog.code[at].target = int32(end)
	}
	if c.err != nil {
		return nil, fmt.Errorf("behavior %s: %w", beh.Name, c.err)
	}
	return prog, nil
}

func (c *compiler) emit(i instr) int {
	c.prog.code = append(c.prog.code, i)
	return len(c.prog.code) - 1
}

func (c *compiler) here() int32 { return int32(len(c.prog.code)) }

func (c *compiler) addLocal(v *spec.Variable) {
	if _, ok := c.prog.lslot[v]; ok {
		return
	}
	c.prog.lslot[v] = len(c.prog.locals)
	c.prog.locals = append(c.prog.locals, v)
}

func (c *compiler) newTemp(name string, t spec.Type) *spec.Variable {
	v := spec.NewVar(fmt.Sprintf("__%s_%d", name, c.prog.temps), t)
	c.prog.temps++
	c.addLocal(v)
	return v
}

// read / write classify a referenced variable: locals stay out of the
// footprint, known globals enter it, and anything else is an undeclared
// scratch local (loop variables, timeout flags) registered on the fly.
func (c *compiler) read(v *spec.Variable) {
	if _, ok := c.prog.lslot[v]; ok {
		return
	}
	if _, ok := c.m.gslot[v]; ok {
		c.prog.reads[v] = true
		return
	}
	c.addLocal(v)
}

func (c *compiler) write(v *spec.Variable) {
	if _, ok := c.prog.lslot[v]; ok {
		return
	}
	if _, ok := c.m.gslot[v]; ok {
		c.prog.writes[v] = true
		return
	}
	c.addLocal(v)
}

func (c *compiler) scanExpr(e spec.Expr) {
	spec.WalkExpr(e, func(x spec.Expr) bool {
		if r, ok := x.(*spec.VarRef); ok {
			c.read(r.Var)
		}
		return true
	})
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *compiler) stmts(list []spec.Stmt) {
	for _, s := range list {
		if c.err != nil {
			return
		}
		c.stmt(s)
	}
}

func (c *compiler) stmt(s spec.Stmt) {
	switch s := s.(type) {
	case *spec.Assign:
		c.compileAssign(s)
	case *spec.If:
		c.compileIf(s)
	case *spec.For:
		c.compileFor(s)
	case *spec.While:
		c.compileWhile(s)
	case *spec.Loop:
		c.compileLoop(s)
	case *spec.Exit:
		if len(c.exits) == 0 {
			c.fail("exit outside a loop")
			return
		}
		j := c.emit(instr{op: opJump})
		top := len(c.exits) - 1
		c.exits[top] = append(c.exits[top], j)
	case *spec.Return:
		j := c.emit(instr{op: opJump})
		if len(c.rets) > 0 {
			top := len(c.rets) - 1
			c.rets[top] = append(c.rets[top], j)
		} else {
			c.endRefs = append(c.endRefs, j)
		}
	case *spec.Wait:
		c.compileWait(s)
	case *spec.Call:
		c.compileCall(s)
	case *spec.Null:
		// nothing
	default:
		c.fail("cannot compile %T", s)
	}
}

func (c *compiler) compileAssign(s *spec.Assign) {
	if spec.BaseVar(s.LHS) == nil {
		c.fail("assignment to non-lvalue %s", s.LHS)
		return
	}
	c.scanExpr(s.RHS)
	c.scanExpr(s.LHS) // index/slice-bound reads; base read is conservative
	c.write(spec.BaseVar(s.LHS))
	c.emit(instr{op: opAssign, assign: s})
}

func (c *compiler) compileIf(s *spec.If) {
	var toEnd []int
	arm := func(cond spec.Expr, body []spec.Stmt, last bool) {
		c.scanExpr(cond)
		br := c.emit(instr{op: opBranch, cond: cond})
		c.stmts(body)
		if !last {
			toEnd = append(toEnd, c.emit(instr{op: opJump}))
		}
		c.prog.code[br].target = c.here()
	}
	lastArm := len(s.Elifs)
	arm(s.Cond, s.Then, lastArm == 0 && len(s.Else) == 0)
	for i, e := range s.Elifs {
		arm(e.Cond, e.Body, i == lastArm-1 && len(s.Else) == 0)
	}
	c.stmts(s.Else)
	for _, j := range toEnd {
		c.prog.code[j].target = c.here()
	}
}

// compileFor lowers a for loop to explicit counter updates. The bound
// is evaluated once into a temp, matching the simulator (which
// evaluates From and To before the first iteration).
func (c *compiler) compileFor(s *spec.For) {
	c.addLocal(s.Var)
	to := c.newTemp("to", spec.Integer)
	c.scanExpr(s.From)
	c.scanExpr(s.To)
	c.emit(instr{op: opAssign, assign: spec.AssignVar(spec.Ref(s.Var), s.From)})
	c.emit(instr{op: opAssign, assign: spec.AssignVar(spec.Ref(to), s.To)})
	head := c.here()
	br := c.emit(instr{op: opBranch, cond: spec.Le(spec.Ref(s.Var), spec.Ref(to))})
	c.exits = append(c.exits, nil)
	c.stmts(s.Body)
	c.emit(instr{op: opAssign, assign: spec.AssignVar(spec.Ref(s.Var), spec.Add(spec.Ref(s.Var), spec.Int(1)))})
	c.emit(instr{op: opJump, target: head})
	c.patchLoopEnd(br)
}

func (c *compiler) compileWhile(s *spec.While) {
	head := c.here()
	c.scanExpr(s.Cond)
	br := c.emit(instr{op: opBranch, cond: s.Cond})
	c.exits = append(c.exits, nil)
	c.stmts(s.Body)
	c.emit(instr{op: opJump, target: head})
	c.patchLoopEnd(br)
}

func (c *compiler) compileLoop(s *spec.Loop) {
	head := c.here()
	c.exits = append(c.exits, nil)
	c.stmts(s.Body)
	c.emit(instr{op: opJump, target: head})
	c.patchLoopEnd(-1)
}

// patchLoopEnd closes the innermost loop: the guard branch (if any) and
// every Exit jump land just past the loop body.
func (c *compiler) patchLoopEnd(guard int) {
	end := c.here()
	if guard >= 0 {
		c.prog.code[guard].target = end
	}
	top := len(c.exits) - 1
	for _, j := range c.exits[top] {
		c.prog.code[j].target = end
	}
	c.exits = c.exits[:top]
}

func (c *compiler) compileWait(s *spec.Wait) {
	if len(s.On) > 0 {
		c.fail("'wait on' sensitivity lists are not supported by the model checker " +
			"(fixed-delay and hardwired-port buses are rate-matched by construction; simulate them instead)")
		return
	}
	if s.Until == nil && !s.HasFor {
		c.fail("'wait' forever cannot be model-checked (the process would never terminate)")
		return
	}
	if s.HasFor && s.For < 0 {
		c.fail("negative wait duration %d", s.For)
		return
	}
	if s.Until != nil {
		c.scanExpr(s.Until)
	}
	if s.TimedOut != nil {
		c.addLocal(s.TimedOut)
	}
	c.emit(instr{op: opWait, wait: s})
}

// compileCall inlines the procedure body: copy-in assignments, cleared
// Out params and locals, the body with Return lowered to a jump past
// it, then copy-out assignments. Inlining keeps the program counter the
// complete control state (no call stack in the product state); the
// generated accessor/server procedures never recurse.
func (c *compiler) compileCall(s *spec.Call) {
	proc := s.Proc
	if proc == nil {
		c.fail("call to nil procedure")
		return
	}
	if len(s.Args) != len(proc.Params) {
		c.fail("call %s arity mismatch", proc.Name)
		return
	}
	if c.active[proc] {
		c.fail("procedure %s recurses; the checker inlines calls and cannot bound recursion", proc.Name)
		return
	}
	c.active[proc] = true
	defer delete(c.active, proc)

	// Procedure storage is registered once; distinct call sites share
	// the slots, which is safe because every activation clears or
	// copies-in each one on entry.
	for _, prm := range proc.Params {
		c.addLocal(prm.Var)
	}
	for _, l := range proc.Locals {
		c.addLocal(l)
	}
	for i, prm := range proc.Params {
		switch prm.Mode {
		case spec.ModeIn, spec.ModeInOut:
			c.scanExpr(s.Args[i])
			c.emit(instr{op: opAssign, assign: spec.AssignVar(spec.Ref(prm.Var), s.Args[i])})
		default:
			c.emit(instr{op: opClear, v: prm.Var})
		}
	}
	for _, l := range proc.Locals {
		c.emit(instr{op: opClear, v: l})
	}
	c.rets = append(c.rets, nil)
	c.stmts(proc.Body)
	top := len(c.rets) - 1
	for _, j := range c.rets[top] {
		c.prog.code[j].target = c.here()
	}
	c.rets = c.rets[:top]
	for i, prm := range proc.Params {
		if prm.Mode == spec.ModeOut || prm.Mode == spec.ModeInOut {
			if spec.BaseVar(s.Args[i]) == nil {
				c.fail("call %s: out argument %d is not an lvalue", proc.Name, i)
				return
			}
			c.scanExpr(s.Args[i])
			c.write(spec.BaseVar(s.Args[i]))
			c.emit(instr{op: opAssign, assign: spec.AssignVar(s.Args[i], spec.Ref(prm.Var))})
		}
	}
}
