package verify

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bits"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

// The binary codec's single obligation: it must partition states into
// exactly the equivalence classes of the legacy string encode() — equal
// bytes iff equal strings. These tests check the obligation three ways:
// pairwise over states harvested from real explorations, over crafted
// array-tail states (where the string rendering deliberately conflates
// distinct values), and over fuzz-generated state pairs.

// exploreStates runs the searcher and returns every stored state.
func exploreStates(t *testing.T, pcfg protogen.Config, vcfg Config) []*state {
	t.Helper()
	sys, _ := refinePQ(t, pcfg)
	m, err := newMachine(sys, withDefaults(vcfg))
	if err != nil {
		t.Fatal(err)
	}
	sr := newSearcher(m)
	if err := sr.run(); err != nil {
		t.Fatal(err)
	}
	states := make([]*state, len(sr.nodes))
	for i, n := range sr.nodes {
		states[i] = n.st
	}
	return states
}

func checkPairwise(t *testing.T, label string, states []*state) {
	t.Helper()
	strs := make([]string, len(states))
	bins := make([][]byte, len(states))
	for i, st := range states {
		strs[i] = st.encode()
		bins[i] = st.encodeInto(nil)
	}
	for i := range states {
		for j := i; j < len(states); j++ {
			sEq := strs[i] == strs[j]
			bEq := bytes.Equal(bins[i], bins[j])
			if sEq != bEq {
				t.Fatalf("%s: states %d/%d: string equal=%v, binary equal=%v\nstr i: %q\nstr j: %q",
					label, i, j, sEq, bEq, strs[i], strs[j])
			}
			if bEq && hashKey(bins[i]) != hashKey(bins[j]) {
				t.Fatalf("%s: states %d/%d: equal keys hash differently", label, i, j)
			}
		}
	}
}

// TestCodecMatchesLegacyEncode harvests every state of the baseline
// drop-budget exploration plus a slice of the hardened protocol's
// space, and asserts pairwise that encodeInto and encode() induce the
// same equality relation. (The searcher dedups on the binary key, so
// all harvested states are pairwise distinct under it — the test's
// teeth are that the legacy strings must then be pairwise distinct
// too, plus the self-comparisons.)
func TestCodecMatchesLegacyEncode(t *testing.T) {
	base := exploreStates(t, protogen.Config{Protocol: spec.FullHandshake}, Config{MaxDrops: 1})
	checkPairwise(t, "baseline-drop1", base)

	robust := exploreStates(t, robustCfg(false), Config{MaxStates: 1500})
	if len(robust) > 400 {
		// Pairwise over every robust state would be O(62k^2); a strided
		// sample keeps the cross-section while staying fast.
		stride := len(robust)/400 + 1
		var sample []*state
		for i := 0; i < len(robust); i += stride {
			sample = append(sample, robust[i])
		}
		robust = sample
	}
	checkPairwise(t, "robust", robust)
}

// arrayTailState builds a minimal one-process state whose only global
// is a 12-element array; tweak >= 9 lands in the tail the string
// rendering summarizes away.
func arrayTailState(tweak int, delta uint64) *state {
	elems := make([]sim.Value, 12)
	for i := range elems {
		elems[i] = sim.VecVal{V: bits.FromUint(uint64(i), 8)}
	}
	if tweak >= 0 {
		elems[tweak] = sim.VecVal{V: bits.FromUint(uint64(tweak)+delta, 8)}
	}
	return &state{
		g:      []sim.Value{sim.ArrayVal{Elems: elems}},
		l:      [][]sim.Value{nil},
		ps:     []procState{{pc: 3, blocked: true, rem: -1}},
		budget: 1,
	}
}

// TestCodecConflatesArrayTails pins the deliberate imprecision: states
// differing only past array index 8 were one state to the string store,
// so they must stay one state to the binary store — a finer codec would
// silently change every recorded state count.
func TestCodecConflatesArrayTails(t *testing.T) {
	ref := arrayTailState(-1, 0)
	for _, tc := range []struct {
		name   string
		other  *state
		sameAs bool
	}{
		{"tail-9", arrayTailState(9, 7), true},
		{"tail-11", arrayTailState(11, 200), true},
		{"head-0", arrayTailState(0, 7), false},
		{"head-8", arrayTailState(8, 7), false},
	} {
		sEq := ref.encode() == tc.other.encode()
		bEq := bytes.Equal(ref.encodeInto(nil), tc.other.encodeInto(nil))
		if sEq != tc.sameAs {
			t.Fatalf("%s: legacy encode equal=%v, expected %v — ArrayVal.String changed; realign the codec", tc.name, sEq, tc.sameAs)
		}
		if bEq != tc.sameAs {
			t.Fatalf("%s: binary encode equal=%v, want %v", tc.name, bEq, tc.sameAs)
		}
	}
}

// gsrc is a deterministic byte source for the fuzz generator; reads
// past the end yield zeros so any input is total.
type gsrc struct {
	data []byte
	i    int
}

func (g *gsrc) byte() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

func (g *gsrc) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(g.byte())
	}
	return v
}

// slotType is a generated "specification type" for one storage slot:
// both states of a pair draw their slot values from the same slotType,
// mirroring the real invariant that a slot's type never changes.
type slotType struct {
	kind   byte // 0 int, 1 bool, 2 vec, 3 array, 4 record
	width  int
	alen   int
	elem   *slotType
	rec    spec.RecordType
	fields []*slotType
}

func genType(g *gsrc, depth int) *slotType {
	k := g.byte() % 5
	if depth >= 2 && k >= 3 {
		k %= 3 // bound nesting
	}
	st := &slotType{kind: k}
	switch k {
	case 2:
		st.width = 1 + int(g.byte()%70)
	case 3:
		st.alen = int(g.byte() % 13) // crosses the 9-element tail boundary
		st.elem = genType(g, depth+1)
	case 4:
		n := 1 + int(g.byte()%3)
		st.rec = spec.RecordType{Name: "R"}
		for i := 0; i < n; i++ {
			st.fields = append(st.fields, genType(g, depth+1))
			st.rec.Fields = append(st.rec.Fields, spec.Field{Name: fmt.Sprintf("F%d", i), Type: spec.Bit})
		}
	}
	return st
}

func genVal(g *gsrc, t *slotType) sim.Value {
	switch t.kind {
	case 0:
		return sim.IntVal{V: int64(g.u64())}
	case 1:
		return sim.BoolVal{V: g.byte()%2 == 1}
	case 2:
		return sim.VecVal{V: bits.FromUint(g.u64(), t.width)}
	case 3:
		elems := make([]sim.Value, t.alen)
		for i := range elems {
			elems[i] = genVal(g, t.elem)
		}
		return sim.ArrayVal{Elems: elems}
	default:
		fs := make([]sim.Value, len(t.fields))
		for i := range fs {
			fs[i] = genVal(g, t.fields[i])
		}
		return sim.RecordVal{Type: t.rec, Fields: fs}
	}
}

type fuzzLayout struct {
	gts    []*slotType
	lts    [][]*slotType
	nTrack int
}

func genLayout(g *gsrc) *fuzzLayout {
	lay := &fuzzLayout{}
	for i, n := 0, 1+int(g.byte()%3); i < n; i++ {
		lay.gts = append(lay.gts, genType(g, 0))
	}
	for p, n := 0, 1+int(g.byte()%2); p < n; p++ {
		var ts []*slotType
		for i, nl := 0, int(g.byte()%3); i < nl; i++ {
			ts = append(ts, genType(g, 0))
		}
		lay.lts = append(lay.lts, ts)
	}
	lay.nTrack = int(g.byte() % 3)
	return lay
}

func genState(g *gsrc, lay *fuzzLayout) *state {
	st := &state{}
	for _, t := range lay.gts {
		st.g = append(st.g, genVal(g, t))
	}
	for _, ts := range lay.lts {
		var ls []sim.Value
		for _, t := range ts {
			ls = append(ls, genVal(g, t))
		}
		st.l = append(st.l, ls)
		st.ps = append(st.ps, procState{
			pc:      int32(g.byte()),
			blocked: g.byte()%2 == 1,
			fin:     g.byte()%2 == 1,
			rem:     int64(int8(g.byte())),
		})
	}
	for i := 0; i < lay.nTrack; i++ {
		st.lastW = append(st.lastW, int8(g.byte()%5)-1)
	}
	st.budget = int16(g.byte() % 4)
	return st
}

// copyState returns an independent shallow copy (values are immutable
// and shared, slices are fresh) the mutation modes below can edit.
func copyState(s *state) *state {
	ns := &state{
		g:      append([]sim.Value(nil), s.g...),
		l:      make([][]sim.Value, len(s.l)),
		ps:     append([]procState(nil), s.ps...),
		lastW:  append([]int8(nil), s.lastW...),
		budget: s.budget,
	}
	for i := range s.l {
		ns.l[i] = append([]sim.Value(nil), s.l[i]...)
	}
	return ns
}

// FuzzStateCodec generates a typed layout plus two states over it from
// the input bytes — independently drawn, identical, single-slot
// mutated, or array-tail mutated — and asserts the codec equivalence:
// binary keys equal iff legacy string keys equal.
func FuzzStateCodec(f *testing.F) {
	f.Add([]byte{})
	// One 12-element vec(8) array global, one process, tail mutation.
	f.Add([]byte{0x00, 0x03, 0x0c, 0x02, 0x07, 0x00, 0x00, 0x00,
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 3})
	f.Add([]byte("\x02\x04\x01\x00\x01\x02\x10records and bools and vectors, oh my"))
	f.Add([]byte{0x01, 0x02, 0x45, 0x01, 0x02, 0x02, 0x11, 0x02, 0x22,
		0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &gsrc{data: data}
		lay := genLayout(g)
		a := genState(g, lay)
		var b *state
		switch g.byte() % 4 {
		case 0: // independent draw
			b = genState(g, lay)
		case 1: // identical
			b = copyState(a)
		case 2: // one global slot regenerated
			b = copyState(a)
			slot := int(g.byte()) % len(lay.gts)
			b.g[slot] = genVal(g, lay.gts[slot])
		default: // array-tail mutation: strings must stay equal
			b = copyState(a)
			for slot, ty := range lay.gts {
				if ty.kind == 3 && ty.alen > 10 {
					av := a.g[slot].(sim.ArrayVal)
					elems := append([]sim.Value(nil), av.Elems...)
					idx := 10 + int(g.byte())%(ty.alen-10)
					elems[idx] = genVal(g, ty.elem)
					b.g[slot] = sim.ArrayVal{Elems: elems}
					break
				}
			}
		}
		sEq := a.encode() == b.encode()
		bEq := bytes.Equal(a.encodeInto(nil), b.encodeInto(nil))
		if sEq != bEq {
			t.Fatalf("codec divergence: string equal=%v, binary equal=%v\nstr a: %q\nstr b: %q",
				sEq, bEq, a.encode(), b.encode())
		}
	})
}
