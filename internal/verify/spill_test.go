package verify

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/protogen"
	"repro/internal/spec"
)

// checkDigest flattens everything a verdict asserts — counts, depth,
// fingerprint and the full violation list — into one comparable value.
type checkDigest struct {
	states, depth int
	transitions   int64
	fingerprint   string
	incomplete    string
	violations    string
}

func digestOf(rep *Report) checkDigest {
	var vs []string
	for _, v := range rep.Violations {
		vs = append(vs, v.Kind.String()+": "+v.Message)
	}
	return checkDigest{
		states: rep.States, depth: rep.Depth, transitions: rep.Transitions,
		fingerprint: rep.Fingerprint, incomplete: rep.IncompleteReason,
		violations: strings.Join(vs, "\n"),
	}
}

// TestSpillInvariance is the tentpole's acceptance pin: verdicts,
// state counts and the reachable-set fingerprint must be identical
// whether the store lives in RAM or spills under a budget far smaller
// than the state space, at every worker count.
func TestSpillInvariance(t *testing.T) {
	run := func(budget int64, workers int) (checkDigest, *Report) {
		sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
		rep := mustCheck(t, sys, Config{
			MaxDrops: 1, Workers: workers,
			MemBudget: budget, SpillDir: t.TempDir(),
		})
		return digestOf(rep), rep
	}
	ref, _ := run(0, 1)
	if ref.fingerprint == "" {
		t.Fatal("no fingerprint in the in-RAM report")
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if got, _ := run(0, workers); got != ref {
			t.Fatalf("in-RAM workers=%d diverged:\n%+v\nwant:\n%+v", workers, got, ref)
		}
		// A 4 KiB budget forces every sealed layer to disk.
		got, rep := run(4096, workers)
		if got != ref {
			t.Fatalf("spill workers=%d diverged:\n%+v\nwant:\n%+v", workers, got, ref)
		}
		if rep.SpilledStates == 0 || rep.SpillBytes == 0 {
			t.Fatalf("spill workers=%d: budget 4096 spilled nothing (%d states, %d bytes)",
				workers, rep.SpilledStates, rep.SpillBytes)
		}
		if rep.SpilledStates >= rep.States {
			t.Fatalf("spilled %d of %d states: the newest layer must stay hot", rep.SpilledStates, rep.States)
		}
	}
}

// TestSpillMatchesInRAMRobust runs the hardened protocol's exhaustive
// fault-free space (~62k states) under a 1 MiB budget: a realistically
// deep exploration where nearly every layer seals, re-expands sealed
// parents through the decode path, and still proves the same verdict.
func TestSpillMatchesInRAMRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exploration")
	}
	run := func(budget int64) *Report {
		sys, _ := refinePQ(t, robustCfg(false))
		return mustCheck(t, sys, Config{MemBudget: budget, SpillDir: t.TempDir()})
	}
	ram, spill := run(0), run(1<<20)
	if d1, d2 := digestOf(ram), digestOf(spill); d1 != d2 {
		t.Fatalf("spill diverged:\n%+v\nwant:\n%+v", d2, d1)
	}
	if spill.IncompleteReason != "" {
		t.Fatalf("spill run did not complete: %s", spill.IncompleteReason)
	}
	if spill.SpilledStates < spill.States/2 {
		t.Fatalf("1 MiB budget spilled only %d of %d states", spill.SpilledStates, spill.States)
	}
}

// TestLossyMode: hash-compaction must report its omission probability,
// stay deterministic, and — on a space this small, where a 64-bit
// collision is astronomically unlikely — agree with the exact run.
func TestLossyMode(t *testing.T) {
	run := func(lossy bool) *Report {
		sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
		return mustCheck(t, sys, Config{
			MaxDrops: 1, MemBudget: 4096, SpillDir: t.TempDir(), Lossy: lossy,
		})
	}
	exact, lossy := run(false), run(true)
	if !lossy.Lossy || lossy.OmissionProb <= 0 || lossy.OmissionProb > 1 {
		t.Fatalf("lossy run reported Lossy=%v OmissionProb=%g", lossy.Lossy, lossy.OmissionProb)
	}
	if exact.Lossy || exact.OmissionProb != 0 {
		t.Fatalf("exact run reported Lossy=%v OmissionProb=%g", exact.Lossy, exact.OmissionProb)
	}
	if d1, d2 := digestOf(exact), digestOf(lossy); d1 != d2 {
		t.Fatalf("lossy diverged from exact on a collision-free space:\n%+v\nwant:\n%+v", d2, d1)
	}
	again := run(true)
	if digestOf(lossy) != digestOf(again) {
		t.Fatal("lossy mode is not deterministic across runs")
	}
}

// TestDecodeRoundTrip: every state of a real exploration must survive
// encode → decode → re-encode byte-identically — the property that
// makes sealed states re-expandable at all.
func TestDecodeRoundTrip(t *testing.T) {
	sys, _ := refinePQ(t, protogen.Config{Protocol: spec.FullHandshake})
	m, err := newMachine(sys, withDefaults(Config{MaxDrops: 1}))
	if err != nil {
		t.Fatal(err)
	}
	sr := newSearcher(m)
	if err := sr.run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range sr.nodes {
		key := n.st.encodeInto(nil)
		extras := n.st.encodeTailsInto(nil)
		dec, err := decodeState(m, key, extras)
		if err != nil {
			t.Fatalf("state %d: decode: %v", i, err)
		}
		if got := dec.encodeInto(nil); !bytes.Equal(got, key) {
			t.Fatalf("state %d: re-encoded key differs\ngot:  %x\nwant: %x", i, got, key)
		}
		if got := dec.encodeTailsInto(nil); !bytes.Equal(got, extras) {
			t.Fatalf("state %d: re-encoded extras differ", i)
		}
	}
}

// newTestSpill builds a spillStore in a throwaway subdirectory (close
// removes the directory, so it must own it).
func newTestSpill(t *testing.T) *spillStore {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	sp, err := newSpillStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sp.close)
	return sp
}

// spillAdd seals one payload, failing the test on error.
func spillAdd(t *testing.T, sp *spillStore, h uint64, node int32, layer int, payload []byte, keyLen int) {
	t.Helper()
	if err := sp.add(h, node, layer, payload, keyLen); err != nil {
		t.Fatal(err)
	}
}

// TestSpillCrashRecovery: a torn or bit-flipped spill file must surface
// as an error, never as a silently wrong membership answer.
func TestSpillCrashRecovery(t *testing.T) {
	keyA := []byte("key-aaaaaaaaaaaaaaaaaaaaaaaa")
	keyB := []byte("key-bbbbbbbbbbbbbbbbbbbbbbbb")
	// Same low 4 hash bits → same shard; B is layer 0's delta against A.
	const hA, hB = uint64(0x10), uint64(0x20)

	build := func(t *testing.T) *spillStore {
		sp := newTestSpill(t)
		spillAdd(t, sp, hA, 0, 0, append(keyA, "-extras"...), len(keyA))
		spillAdd(t, sp, hB, 1, 0, append(keyB, "-extras"...), len(keyB))
		if err := sp.finishBatch(); err != nil {
			t.Fatal(err)
		}
		return sp
	}

	t.Run("intact", func(t *testing.T) {
		sp := build(t)
		for _, tc := range []struct {
			h    uint64
			key  []byte
			node int32
		}{{hA, keyA, 0}, {hB, keyB, 1}} {
			node, ok, err := sp.lookup(tc.h, tc.key, false)
			if err != nil || !ok || node != tc.node {
				t.Fatalf("lookup(%x) = (%d, %v, %v), want (%d, true, nil)", tc.h, node, ok, err, tc.node)
			}
		}
		if _, ok, err := sp.lookup(hA, keyB, false); err != nil || ok {
			t.Fatalf("same-hash different-key probe = (%v, %v), want miss", ok, err)
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		sp := build(t)
		// Flip one byte inside the second record's body: its checksum
		// must catch it.
		path := filepath.Join(sp.dir, "shard00.dat")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sp.lookup(hB, keyB, false); err == nil ||
			!strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("corrupted record lookup err = %v, want checksum failure", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		sp := build(t)
		// Tear the file mid-record, as a crashed writer would.
		path := filepath.Join(sp.dir, "shard00.dat")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sp.lookup(hB, keyB, false); err == nil {
			t.Fatal("truncated record lookup succeeded, want error")
		}
	})
}

// TestBloomNoFalseNegatives: the pre-filter may only suppress probes
// that would miss — everything added must report present.
func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := uint64(0); i < 1000; i++ {
		b.add(bloomMix(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !b.has(bloomMix(i)) {
			t.Fatalf("false negative for entry %d", i)
		}
	}
	// And it must actually filter: absent keys should mostly miss.
	misses := 0
	for i := uint64(10_000); i < 11_000; i++ {
		if !b.has(bloomMix(i)) {
			misses++
		}
	}
	if misses < 900 {
		t.Fatalf("bloom filtered only %d/1000 absent keys", misses)
	}
}

// FuzzSpillRecord drives generated payloads through the on-disk record
// format — full records, delta compression against per-layer bases,
// index merge, Bloom filter and checksummed read-back — and asserts
// the payload round-trips byte-identically and lookups confirm exactly.
func FuzzSpillRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("several states sharing a long common middle section"))
	f.Add([]byte{0x01, 0x02, 0x45, 0x01, 0x02, 0x02, 0x11, 0x02, 0x22, 0xff, 0x00, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &gsrc{data: data}
		lay := genLayout(g)
		sp := newTestSpill(t)
		n := 1 + int(g.byte()%6)
		type rec struct {
			h       uint64
			payload []byte
			keyLen  int
		}
		var recs []rec
		for i := 0; i < n; i++ {
			st := genState(g, lay)
			key := st.encodeInto(nil)
			payload := st.encodeTailsInto(key)
			h := hashKey(payload[:len(key)])
			layer := int(g.byte() % 3)
			if err := sp.add(h, int32(i), layer, payload, len(key)); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{h, payload, len(key)})
			if g.byte()%4 == 0 {
				if err := sp.finishBatch(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sp.finishBatch(); err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			loc := sp.locs[i]
			payload, keyLen, err := sp.shards[loc.shard()].readRecord(loc.off(), 0)
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if keyLen != r.keyLen || !bytes.Equal(payload, r.payload) {
				t.Fatalf("record %d: round-trip mismatch\ngot:  %d %x\nwant: %d %x",
					i, keyLen, payload, r.keyLen, r.payload)
			}
			node, ok, err := sp.lookup(r.h, r.payload[:r.keyLen], false)
			if err != nil {
				t.Fatalf("record %d: lookup: %v", i, err)
			}
			// Duplicate generated states may legitimately resolve to an
			// earlier node with the same key.
			if !ok || !bytes.Equal(recs[node].payload[:recs[node].keyLen], r.payload[:r.keyLen]) {
				t.Fatalf("record %d: lookup = (%d, %v), want a node with the same key", i, node, ok)
			}
		}
	})
}
