package verify

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/spec"
)

// Config parameterizes a model-checking run.
type Config struct {
	// MaxDepth bounds the BFS depth (product transitions along any one
	// path); 0 means unbounded — MaxStates is then the only limit.
	MaxDepth int
	// MaxStates bounds the number of distinct stored states; 0 means the
	// default of 250000. Exceeding it makes the report Incomplete.
	MaxStates int
	// Workers is the exploration worker count; 0 uses every CPU. The
	// verdict, state count and transition count are identical at any
	// worker count: layers are expanded in parallel but merged in a
	// fixed order.
	Workers int
	// MaxDrops is the wire-fault budget: along any one path, at most
	// this many tracked bus-line transitions may be dropped. 0 checks
	// the fault-free system only.
	MaxDrops int
	// DropFields names the record fields whose transitions may be
	// dropped; empty means START and DONE.
	DropFields []string
	// MaxViolations caps distinct reported violations; 0 means 8.
	// Hitting the cap stops the search (Incomplete).
	MaxViolations int
	// NoReduction disables sleep-set partial-order reduction. The
	// verdict must not change — only the state count (used by tests as
	// a soundness cross-check).
	NoReduction bool
	// SkipLiveness disables the bounded-response cycle check.
	SkipLiveness bool
	// AbortVars lists abort-counter finals keys ("Module.Var", see
	// protogen.Refinement.AbortKeys). A run that signalled a clean
	// abort is excused from the data-delivery check.
	AbortVars []string
	// MaxClocks bounds the golden simulation and counterexample
	// replays; 0 means 1000000.
	MaxClocks int64
	// MemBudget bounds the resident bytes of stored states; 0 keeps
	// every state in RAM (the classic mode). With a budget, whole BFS
	// layers beyond it seal to a disk spill store under SpillDir and the
	// search becomes disk-bound instead of RAM-bound. The verdict, state
	// count and transition count are byte-identical at any budget: the
	// spill tier confirms candidates exactly like the hot tier.
	MemBudget int64
	// SpillDir is where spill scratch files live (a fresh subdirectory
	// is created per run and removed afterwards); "" uses the system
	// temp directory. Only consulted when MemBudget > 0.
	SpillDir string
	// Lossy switches the dedup store to hash-compaction mode: a 64-bit
	// hash match is accepted without byte confirmation (SPIN bitstate
	// style). Two distinct states per ~2^64 pairs may merge, silently
	// omitting part of the space — the Report quantifies that as
	// OmissionProb. Never enabled implicitly.
	Lossy bool
	// Progress, when non-nil, is called after each merged BFS layer with
	// the stored-state count and current depth. It runs on the sequential
	// merge path (never concurrently) and must return quickly — the
	// search blocks on it. It observes progress only; it cannot alter
	// the verdict, so two runs differing only in Progress stay
	// byte-identical.
	Progress func(states, depth int) `json:"-"`
}

// Kind classifies a violation.
type Kind int

// Violation kinds.
const (
	// Deadlock: a reachable state with every unfinished process blocked
	// forever while foreground work remains.
	Deadlock Kind = iota
	// DriverConflict: two processes drive a shared bus line in a way
	// the handshake should make mutually exclusive.
	DriverConflict
	// Livelock: a cycle along which a transaction strobe never returns
	// to idle — bounded response is violated.
	Livelock
	// Corruption: every foreground process finished without signalling
	// an abort, but a module variable differs from the golden
	// fault-free run — data was silently lost or corrupted.
	Corruption
)

func (k Kind) String() string {
	switch k {
	case Deadlock:
		return "deadlock"
	case DriverConflict:
		return "driver-conflict"
	case Livelock:
		return "bounded-response"
	case Corruption:
		return "data-corruption"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Violation is one verified property failure with its counterexample.
type Violation struct {
	Kind    Kind
	Message string
	Cex     *Counterexample
}

// Report summarizes one model-checking run.
type Report struct {
	Procs            int
	States           int
	Transitions      int64
	Depth            int
	Incomplete       bool
	IncompleteReason string
	Violations       []Violation
	// GoldenClocks is the fault-free simulation's duration (the
	// delivery-check reference), -1 if the golden run itself failed.
	GoldenClocks int64
	Elapsed      time.Duration
	// Fingerprint is an order-independent digest of the reachable
	// hash set: identical across worker counts and memory budgets, it
	// is the checkable witness behind the persistent verify cache.
	Fingerprint string
	// SpilledStates/SpillBytes report the cold tier's share when a
	// MemBudget was set (both zero otherwise). They describe resource
	// use only — never the verdict — so the serve layer excludes them
	// from cached result bodies.
	SpilledStates int
	SpillBytes    int64
	// Lossy echoes Config.Lossy; OmissionProb then bounds the chance
	// that any distinct reachable states were merged by a 64-bit hash
	// collision (n(n-1)/2^65 for n stored states).
	Lossy        bool
	OmissionProb float64
}

// Clean reports a complete run with no violations.
func (r *Report) Clean() bool {
	return !r.Incomplete && len(r.Violations) == 0
}

// Format renders a human-readable summary.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d states, %d transitions (depth %d, %d procs, %s)\n",
		r.States, r.Transitions, r.Depth, r.Procs, r.Elapsed.Round(time.Millisecond))
	if r.SpilledStates > 0 {
		fmt.Fprintf(&b, "spilled %d states to disk (%.1f MiB)\n",
			r.SpilledStates, float64(r.SpillBytes)/(1<<20))
	}
	if r.Lossy {
		fmt.Fprintf(&b, "lossy hash-compaction mode: omission probability <= %.3g\n", r.OmissionProb)
	}
	if r.Incomplete {
		fmt.Fprintf(&b, "INCOMPLETE: %s\n", r.IncompleteReason)
	}
	if len(r.Violations) == 0 {
		b.WriteString("no violations found\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s):\n", len(r.Violations))
	for i, v := range r.Violations {
		fmt.Fprintf(&b, "[%d] %s: %s\n", i+1, v.Kind, v.Message)
		if v.Cex != nil {
			b.WriteString(v.Cex.Format())
		}
	}
	return b.String()
}

func withDefaults(cfg Config) Config {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 250_000
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 8
	}
	if cfg.MaxClocks <= 0 {
		cfg.MaxClocks = 1_000_000
	}
	return cfg
}

// Check explores the system's product state space exhaustively (within
// the configured bounds) and reports every property violation with a
// minimal, replayable counterexample.
//
// The golden fault-free simulation runs first: its finals are the
// data-delivery reference and its duration bounds counterexample
// replays. If the golden run itself fails, the delivery check is
// skipped — the search will find the underlying defect directly.
func Check(sys *spec.System, cfg Config) (*Report, error) {
	return CheckCtx(context.Background(), sys, cfg)
}

// CheckCtx is Check with cooperative cancellation: once ctx is done the
// search stops between expansions and CheckCtx returns ctx.Err() with a
// nil report. A canceled run never yields a partial Report — callers
// (the serve layer's result cache in particular) must not see, let
// alone store, a verdict whose bounds were "whenever the client hung
// up". Cancellation reaches mid-layer via par.ForCtx, so even one huge
// BFS layer aborts promptly.
func CheckCtx(ctx context.Context, sys *spec.System, cfg Config) (*Report, error) {
	cfg = withDefaults(cfg)
	start := time.Now()
	m, err := newMachine(sys, cfg)
	if err != nil {
		return nil, err
	}

	goldenClocks := int64(-1)
	var goldenFinals map[string]string
	replayClocks := cfg.MaxClocks
	if gs, err := sim.New(sys, sim.Config{MaxClocks: cfg.MaxClocks}); err == nil {
		if res, runErr := gs.Run(); runErr == nil {
			goldenClocks = res.Clocks
			if b := res.Clocks*4 + 2000; b < replayClocks {
				replayClocks = b
			}
			slotOf := make(map[string]int, len(m.gname))
			for i, n := range m.gname {
				slotOf[n] = i
			}
			m.expected = make([]sim.Value, len(m.globals))
			goldenFinals = make(map[string]string, len(res.Finals))
			for k, v := range res.Finals {
				goldenFinals[k] = v.String()
				if slot, ok := slotOf[k]; ok {
					m.expected[slot] = v
				}
			}
			for _, k := range cfg.AbortVars {
				if slot, ok := slotOf[k]; ok {
					m.abortSlots = append(m.abortSlots, slot)
				}
			}
		}
	}

	sr := newSearcher(m)
	sr.ctx = ctx
	if cfg.MemBudget > 0 {
		dir := cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("verify: spill dir: %w", err)
		}
		sub, err := os.MkdirTemp(dir, "ifverify-spill-*")
		if err != nil {
			return nil, fmt.Errorf("verify: spill dir: %w", err)
		}
		sp, err := newSpillStore(sub)
		if err != nil {
			return nil, err
		}
		defer sp.close()
		sr.store.spill = sp
	}
	if err := sr.run(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !cfg.SkipLiveness {
		if err := sr.checkLiveness(); err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Procs:        len(m.progs),
		States:       len(sr.nodes),
		Transitions:  sr.transitions,
		Depth:        int(sr.depth),
		GoldenClocks: goldenClocks,
		Fingerprint:  fmt.Sprintf("%016x-%016x", sr.fpXor, sr.fpSum),
		Lossy:        cfg.Lossy,
	}
	if sp := sr.store.spill; sp != nil {
		rep.SpilledStates = sp.states()
		rep.SpillBytes = sp.bytes
	}
	if cfg.Lossy {
		n := float64(len(sr.nodes))
		p := n * (n - 1) / math.Pow(2, 65)
		if p > 1 {
			p = 1
		}
		rep.OmissionProb = p
	}
	if sr.incomplete != "" {
		rep.Incomplete = true
		rep.IncompleteReason = sr.incomplete
	}
	for _, site := range sr.sites {
		cex, err := buildCex(m, sr, site, goldenFinals, cfg.AbortVars, replayClocks)
		if err != nil {
			return nil, fmt.Errorf("verify: rendering counterexample: %w", err)
		}
		rep.Violations = append(rep.Violations, Violation{Kind: site.kind, Message: site.msg, Cex: cex})
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
