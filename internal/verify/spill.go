package verify

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is the cold tier of the dedup store: a disk spill for
// sealed BFS layers, so the checker's resident set is bounded by
// Config.MemBudget instead of the state count. The layout follows the
// external-memory lineage of explicit-state checkers (SPIN's disk
// modes): per shard, one append-only data file of checksummed state
// records plus a sorted immutable hash index that is rewritten by a
// sequential merge whenever layers seal, with an in-RAM Bloom filter
// in front so the overwhelmingly common miss never touches disk.
//
// Soundness contract: in exact mode a hash hit in the index is only a
// candidate — the record is read back and its key section compared
// byte-for-byte against the probe, exactly like the hot tier's
// re-encode-and-confirm. The Bloom filter has no false negatives, so
// it can only suppress reads that would have missed anyway. In lossy
// mode (Config.Lossy) the 64-bit hash match itself is accepted and the
// verdict carries an omission probability, SPIN-bitstate style.
//
// Everything here runs under the searcher's phase discipline: writes
// (add, finishBatch) happen only in the sequential seal phase between
// BFS layers; during parallel expansion the store is frozen and
// lookup/readState may run concurrently — they touch only the
// immutable index mapping, the read-only base cache, and pread on the
// data file.

const (
	// spillShards splits the spill store by the hash's low bits. Fewer
	// than the hot tier's 64: each shard costs file descriptors and an
	// index mapping, and disk shards only need to bound merge sizes.
	spillShards = 16
	// spillIdxEntry is one index entry: hash u64 | offset u64 | node u32.
	spillIdxEntry = 20
	// spillMaxRecord bounds a record body; a corrupt length field must
	// fail cleanly, not allocate gigabytes.
	spillMaxRecord = 1 << 24
	// Record kinds.
	recFull  = 0
	recDelta = 1
)

// spillRec locates one sealed node's record: shard in the low 4 bits,
// data-file offset above. Sealed nodes are a contiguous prefix of the
// node array, so a plain slice indexed by node id maps every sealed
// node to its record.
type spillRec int64

func packRec(shard int, off int64) spillRec { return spillRec(off<<4 | int64(shard)) }
func (r spillRec) shard() int               { return int(r & (spillShards - 1)) }
func (r spillRec) off() int64               { return int64(r) >> 4 }

type idxEnt struct {
	h    uint64
	off  int64
	node int32
}

type spillShard struct {
	data *os.File
	w    *bufio.Writer
	size int64
	// pend holds this batch's index entries until finishBatch merges
	// them into the sorted index.
	pend []idxEnt
	// idx is the current index generation: spillIdxEntry-byte records
	// sorted by (hash, node), memory-mapped read-only.
	idx     mmapRegion
	idxPath string
	gen     int
	count   int
	bloom   bloomFilter
	// bases caches every per-(layer,shard) delta base payload by its
	// data offset: one entry per layer, read-only outside the seal
	// phase. Misses (possible only if the cache were ever bounded) fall
	// back to a disk read.
	bases     map[int64][]byte
	baseLayer int
	baseOff   int64
	base      []byte
}

// spillStore is the cold tier: spillShards shards under one scratch
// directory, plus the node→record map for re-expanding sealed states.
type spillStore struct {
	dir    string
	shards [spillShards]*spillShard
	locs   []spillRec
	bytes  int64
	recBuf []byte
}

func newSpillStore(dir string) (*spillStore, error) {
	sp := &spillStore{dir: dir}
	for i := range sp.shards {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("shard%02d.dat", i)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			sp.close()
			return nil, fmt.Errorf("verify: spill: %w", err)
		}
		sp.shards[i] = &spillShard{
			data:      f,
			w:         bufio.NewWriterSize(f, 1<<16),
			bloom:     newBloom(1 << 12),
			bases:     make(map[int64][]byte),
			baseLayer: -1,
		}
	}
	return sp, nil
}

// close releases every file and removes the scratch directory. Safe on
// a partially constructed store.
func (sp *spillStore) close() {
	for _, sh := range sp.shards {
		if sh == nil {
			continue
		}
		sh.idx.unmap()
		if sh.data != nil {
			sh.data.Close()
		}
	}
	os.RemoveAll(sp.dir)
}

// states reports how many sealed states the store holds.
func (sp *spillStore) states() int { return len(sp.locs) }

// add seals one node: payload is key‖extras (keyLen marking the
// split), appended to the node's shard as a checksummed record,
// delta-compressed against the shard's current per-layer base. Nodes
// must be added in node-id order — the sealed set stays a contiguous
// prefix. Only called from the sequential seal phase.
func (sp *spillStore) add(h uint64, nodeID int32, layer int, payload []byte, keyLen int) error {
	if int(nodeID) != len(sp.locs) {
		return fmt.Errorf("verify: spill: sealing node %d out of order (next is %d)", nodeID, len(sp.locs))
	}
	si := int(h & (spillShards - 1))
	sh := sp.shards[si]
	off := sh.size

	body := sp.recBuf[:0]
	if sh.baseLayer != layer {
		// First record of this layer in this shard: written full, and it
		// becomes the delta base for the rest of the layer.
		body = append(body, recFull)
		body = binary.AppendUvarint(body, uint64(keyLen))
		body = append(body, payload...)
		sh.baseLayer = layer
		sh.baseOff = off
		sh.base = append(sh.base[:0], payload...)
		sh.bases[off] = append([]byte(nil), payload...)
	} else {
		prefix := commonPrefix(payload, sh.base)
		suffix := commonSuffix(payload[prefix:], sh.base[prefix:])
		body = append(body, recDelta)
		body = binary.AppendUvarint(body, uint64(keyLen))
		body = binary.AppendUvarint(body, uint64(sh.baseOff))
		body = binary.AppendUvarint(body, uint64(prefix))
		body = binary.AppendUvarint(body, uint64(suffix))
		body = append(body, payload[prefix:len(payload)-suffix]...)
	}
	sp.recBuf = body[:0]

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], fnv32(body))
	if _, err := sh.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("verify: spill write: %w", err)
	}
	if _, err := sh.w.Write(body); err != nil {
		return fmt.Errorf("verify: spill write: %w", err)
	}
	sh.size += int64(8 + len(body))
	sp.bytes += int64(8 + len(body))
	sh.pend = append(sh.pend, idxEnt{h: h, off: off, node: nodeID})
	sp.locs = append(sp.locs, packRec(si, off))
	return nil
}

// finishBatch flushes every shard's data file and merges its pending
// entries into a new sorted index generation, growing the Bloom filter
// when it gets dense. Runs once per seal phase, sequentially.
func (sp *spillStore) finishBatch() error {
	for si, sh := range sp.shards {
		if len(sh.pend) == 0 {
			continue
		}
		if err := sh.w.Flush(); err != nil {
			return fmt.Errorf("verify: spill flush: %w", err)
		}
		sort.Slice(sh.pend, func(i, j int) bool {
			if sh.pend[i].h != sh.pend[j].h {
				return sh.pend[i].h < sh.pend[j].h
			}
			return sh.pend[i].node < sh.pend[j].node
		})
		if err := sh.mergeIndex(sp.dir, si); err != nil {
			return err
		}
		total := sh.count
		if sh.bloom.dense(total) {
			sh.bloom = newBloom(2 * total)
			for i := 0; i < total; i++ {
				sh.bloom.add(sh.entry(i).h)
			}
		} else {
			for _, e := range sh.pend {
				sh.bloom.add(e.h)
			}
		}
		sh.pend = sh.pend[:0]
	}
	return nil
}

// mergeIndex writes index generation gen+1 = merge(existing sorted
// index, sorted pend), maps it, and retires the old generation.
func (sh *spillShard) mergeIndex(dir string, si int) error {
	newPath := filepath.Join(dir, fmt.Sprintf("shard%02d.idx.%d", si, sh.gen+1))
	f, err := os.OpenFile(newPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("verify: spill index: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var ebuf [spillIdxEntry]byte
	put := func(e idxEnt) error {
		binary.LittleEndian.PutUint64(ebuf[0:], e.h)
		binary.LittleEndian.PutUint64(ebuf[8:], uint64(e.off))
		binary.LittleEndian.PutUint32(ebuf[16:], uint32(e.node))
		_, err := w.Write(ebuf[:])
		return err
	}
	i, j := 0, 0
	for i < sh.count || j < len(sh.pend) {
		var e idxEnt
		switch {
		case i >= sh.count:
			e = sh.pend[j]
			j++
		case j >= len(sh.pend):
			e = sh.entry(i)
			i++
		default:
			a, b := sh.entry(i), sh.pend[j]
			if a.h < b.h || (a.h == b.h && a.node < b.node) {
				e = a
				i++
			} else {
				e = b
				j++
			}
		}
		if err := put(e); err != nil {
			f.Close()
			return fmt.Errorf("verify: spill index: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("verify: spill index: %w", err)
	}
	newCount := sh.count + len(sh.pend)
	m, err := mapFile(f, int64(newCount)*spillIdxEntry)
	f.Close()
	if err != nil {
		return fmt.Errorf("verify: spill index map: %w", err)
	}
	sh.idx.unmap()
	if sh.idxPath != "" {
		os.Remove(sh.idxPath)
	}
	sh.idx, sh.idxPath, sh.count, sh.gen = m, newPath, newCount, sh.gen+1
	return nil
}

// entry decodes sorted index entry i from the mapped index.
func (sh *spillShard) entry(i int) idxEnt {
	b := sh.idx.data[i*spillIdxEntry:]
	return idxEnt{
		h:    binary.LittleEndian.Uint64(b[0:]),
		off:  int64(binary.LittleEndian.Uint64(b[8:])),
		node: int32(binary.LittleEndian.Uint32(b[16:])),
	}
}

// lookup probes the cold tier for a state with the given hash and key.
// In exact mode every same-hash entry's record is read back and its key
// section byte-compared; in lossy mode the hash match is final. Safe
// for concurrent use during expansion.
func (sp *spillStore) lookup(h uint64, key []byte, lossy bool) (int32, bool, error) {
	sh := sp.shards[h&(spillShards-1)]
	if sh.count == 0 || !sh.bloom.has(h) {
		return 0, false, nil
	}
	lo := sort.Search(sh.count, func(i int) bool { return sh.entry(i).h >= h })
	for i := lo; i < sh.count; i++ {
		e := sh.entry(i)
		if e.h != h {
			break
		}
		if lossy {
			return e.node, true, nil
		}
		payload, keyLen, err := sh.readRecord(e.off, 0)
		if err != nil {
			return 0, false, err
		}
		if keyLen == len(key) && bytes.Equal(payload[:keyLen], key) {
			return e.node, true, nil
		}
	}
	return 0, false, nil
}

// readState reconstructs a sealed node's full state for re-expansion.
// Safe for concurrent use during expansion.
func (sp *spillStore) readState(m *machine, nodeID int32) (*state, error) {
	if int(nodeID) >= len(sp.locs) {
		return nil, fmt.Errorf("verify: spill: node %d is not sealed", nodeID)
	}
	loc := sp.locs[nodeID]
	payload, keyLen, err := sp.shards[loc.shard()].readRecord(loc.off(), 0)
	if err != nil {
		return nil, err
	}
	return decodeState(m, payload[:keyLen], payload[keyLen:])
}

// readRecord reads and verifies the record at off, reconstructing a
// delta against its base. The returned payload is freshly allocated
// (or aliases the base cache only via copy). depth guards against
// corrupt delta chains.
func (sh *spillShard) readRecord(off int64, depth int) (payload []byte, keyLen int, err error) {
	if depth > 1 {
		return nil, 0, fmt.Errorf("verify: spill: delta record based on another delta (corrupt index)")
	}
	if off < 0 || off+8 > sh.size {
		return nil, 0, fmt.Errorf("verify: spill: record offset %d outside data file (%d bytes): torn or corrupt spill file", off, sh.size)
	}
	var hdr [8]byte
	if _, err := sh.data.ReadAt(hdr[:], off); err != nil {
		return nil, 0, fmt.Errorf("verify: spill read: %w", err)
	}
	blen := int64(binary.LittleEndian.Uint32(hdr[0:]))
	check := binary.LittleEndian.Uint32(hdr[4:])
	if blen > spillMaxRecord || off+8+blen > sh.size {
		return nil, 0, fmt.Errorf("verify: spill: record at %d claims %d bytes past end of data file: torn or corrupt spill file", off, blen)
	}
	body := make([]byte, blen)
	if _, err := sh.data.ReadAt(body, off+8); err != nil {
		return nil, 0, fmt.Errorf("verify: spill read: %w", err)
	}
	if fnv32(body) != check {
		return nil, 0, fmt.Errorf("verify: spill: record at %d fails its checksum: torn or corrupt spill file", off)
	}
	if len(body) < 1 {
		return nil, 0, fmt.Errorf("verify: spill: empty record body at %d", off)
	}
	kind, body := body[0], body[1:]
	kl, n := binary.Uvarint(body)
	if n <= 0 || kl > uint64(spillMaxRecord) {
		return nil, 0, fmt.Errorf("verify: spill: corrupt key length at %d", off)
	}
	body = body[n:]
	switch kind {
	case recFull:
		if uint64(len(body)) < kl {
			return nil, 0, fmt.Errorf("verify: spill: full record at %d shorter than its key", off)
		}
		return body, int(kl), nil
	case recDelta:
		baseOff, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return nil, 0, fmt.Errorf("verify: spill: corrupt delta base at %d", off)
		}
		prefix, n2 := binary.Uvarint(body[n1:])
		if n2 <= 0 {
			return nil, 0, fmt.Errorf("verify: spill: corrupt delta prefix at %d", off)
		}
		suffix, n3 := binary.Uvarint(body[n1+n2:])
		if n3 <= 0 {
			return nil, 0, fmt.Errorf("verify: spill: corrupt delta suffix at %d", off)
		}
		mid := body[n1+n2+n3:]
		base, ok := sh.bases[int64(baseOff)]
		if !ok {
			base, _, err = sh.readRecord(int64(baseOff), depth+1)
			if err != nil {
				return nil, 0, err
			}
		}
		if prefix+suffix > uint64(len(base)) || prefix+suffix > uint64(spillMaxRecord) {
			return nil, 0, fmt.Errorf("verify: spill: delta at %d trims more than its base holds", off)
		}
		payload = make([]byte, 0, int(prefix)+len(mid)+int(suffix))
		payload = append(payload, base[:prefix]...)
		payload = append(payload, mid...)
		payload = append(payload, base[uint64(len(base))-suffix:]...)
		if uint64(len(payload)) < kl {
			return nil, 0, fmt.Errorf("verify: spill: delta record at %d shorter than its key", off)
		}
		return payload, int(kl), nil
	default:
		return nil, 0, fmt.Errorf("verify: spill: unknown record kind %d at %d", kind, off)
	}
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func commonSuffix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}

// fnv32 is FNV-1a 32-bit: the per-record integrity check. A torn write
// (crash, full disk, concurrent truncation) must surface as an error,
// never as a silently misread state.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// bloomFilter is a standard k-probe Bloom filter over 64-bit state
// hashes, double-hashed from the one value. No false negatives: has()
// is false only if add() was never called for the hash, so the filter
// can only skip disk probes that would have missed.
type bloomFilter struct {
	words []uint64
	mask  uint64
}

const bloomProbes = 6

// newBloom sizes the filter for the given entry capacity at ~12 bits
// per entry, rounded up to a power of two.
func newBloom(capacity int) bloomFilter {
	bits := 1 << 10
	for bits < capacity*12 {
		bits <<= 1
	}
	return bloomFilter{words: make([]uint64, bits/64), mask: uint64(bits - 1)}
}

// dense reports whether the filter is past its design load for n
// entries and should be rebuilt larger.
func (b *bloomFilter) dense(n int) bool {
	return uint64(n)*12 > uint64(len(b.words))*64
}

func bloomMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (b *bloomFilter) add(h uint64) {
	h1, h2 := h, bloomMix(h)|1
	for i := 0; i < bloomProbes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		b.words[pos>>6] |= 1 << (pos & 63)
	}
}

func (b *bloomFilter) has(h uint64) bool {
	h1, h2 := h, bloomMix(h)|1
	for i := 0; i < bloomProbes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		if b.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}
