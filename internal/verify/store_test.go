package verify

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// intState is a minimal one-slot state for store tests.
func intState(v int64) *state {
	return &state{
		g:  []sim.Value{sim.IntVal{V: v}},
		l:  [][]sim.Value{nil},
		ps: []procState{{rem: -1}},
	}
}

// TestStoreConfirmsOnCollision forces distinct states onto one hash
// (inserting them under the same h, as a real 64-bit collision would)
// and checks that lookup confirms by bytes — returning each state's own
// node, chaining through the overflow list, and rejecting a same-hash
// stranger instead of aliasing it to a stored state.
func TestStoreConfirmsOnCollision(t *testing.T) {
	st := newStore()
	var nodes []*node
	const h = uint64(0xdeadbeefcafef00d)
	for i := int64(0); i < 3; i++ {
		nodes = append(nodes, &node{st: intState(i)})
		st.insert(h, int32(i))
	}
	var scratch []byte
	for i := int64(0); i < 3; i++ {
		key := intState(i).encodeInto(nil)
		j, sc, ok, _ := st.lookup(h, key, nodes, scratch)
		scratch = sc
		if !ok || j != int32(i) {
			t.Fatalf("state %d: lookup = (%d, %v), want (%d, true)", i, j, ok, i)
		}
	}
	// A fourth state with the same hash but different bytes must miss:
	// hash equality alone never admits a state.
	key := intState(99).encodeInto(nil)
	if j, _, ok, _ := st.lookup(h, key, nodes, scratch); ok {
		t.Fatalf("stranger with colliding hash matched node %d", j)
	}
	// And a hash nobody inserted misses without touching candidates.
	if _, _, ok, _ := st.lookup(h+1, key, nodes, nil); ok {
		t.Fatal("lookup hit on an absent hash")
	}
}

// TestStoreShardsByHash checks states land in the shard their hash's
// low bits select, so the per-shard maps stay balanced and disjoint.
func TestStoreShardsByHash(t *testing.T) {
	st := newStore()
	var nodes []*node
	for i := int64(0); i < 200; i++ {
		s := intState(i)
		nodes = append(nodes, &node{st: s})
		st.insert(hashKey(s.encodeInto(nil)), int32(i))
	}
	total := 0
	occupied := 0
	for i, sh := range st.shards {
		for h := range sh {
			if h&(storeShards-1) != uint64(i) {
				t.Fatalf("hash %x stored in shard %d", h, i)
			}
		}
		total += len(sh)
		if len(sh) > 0 {
			occupied++
		}
	}
	if total != 200 {
		t.Fatalf("stored %d hashes across shards, want 200 (overflow: %d)", total, len(st.overflow))
	}
	if occupied < storeShards/2 {
		t.Fatalf("only %d/%d shards occupied — FNV low bits are not spreading", occupied, storeShards)
	}
	var scratch []byte
	for i := int64(0); i < 200; i++ {
		key := intState(i).encodeInto(nil)
		j, sc, ok, _ := st.lookup(hashKey(key), key, nodes, scratch)
		scratch = sc
		if !ok || j != int32(i) {
			t.Fatalf("state %d: lookup = (%d, %v)", i, j, ok)
		}
	}
}

// TestOverflowLazyAllocation pins the satellite fix: the overflow map
// exists only after a real 64-bit hash collision, so the common
// collision-free run carries no empty map.
func TestOverflowLazyAllocation(t *testing.T) {
	st := newStore()
	if st.overflow != nil {
		t.Fatal("overflow map allocated before any insert")
	}
	for i := int64(0); i < 100; i++ {
		s := intState(i)
		st.insert(hashKey(s.encodeInto(nil)), int32(i))
	}
	if st.overflow != nil {
		t.Fatalf("overflow map allocated without a collision (%d entries)", len(st.overflow))
	}
	st.insert(hashKey(intState(0).encodeInto(nil)), 100)
	if len(st.overflow) != 1 {
		t.Fatalf("collision did not populate overflow: %d entries", len(st.overflow))
	}
}

// TestViolationDedupBounded pins the vioKeys memory fix: reporting the
// same violation at one site over and over must not grow the dedup map
// or the site list, and the map's keys are fixed-size (kind, hash)
// pairs — it retains no message strings no matter how many distinct
// sites report.
func TestViolationDedupBounded(t *testing.T) {
	s := newSearcher(&machine{cfg: withDefaults(Config{MaxViolations: 100})})
	for i := 0; i < 50; i++ {
		s.addViolation(Deadlock, "deadlock: P stuck at the same site", 7, nil)
	}
	if len(s.vioKeys) != 1 || len(s.sites) != 1 {
		t.Fatalf("repeated violation at one site: %d keys, %d sites, want 1, 1", len(s.vioKeys), len(s.sites))
	}
	// The same finding surfacing at other nodes is still one site (the
	// legacy message-keyed semantics the state counts depend on).
	for n := int32(8); n < 40; n++ {
		s.addViolation(Deadlock, "deadlock: P stuck at the same site", n, nil)
	}
	if len(s.vioKeys) != 1 || len(s.sites) != 1 {
		t.Fatalf("same message across nodes: %d keys, %d sites, want 1, 1", len(s.vioKeys), len(s.sites))
	}
	// Distinct findings still accumulate, each once.
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("driver conflict on B.F%d", i)
		s.addViolation(DriverConflict, msg, 7, nil)
		s.addViolation(DriverConflict, msg, 7, nil)
	}
	if len(s.vioKeys) != 11 || len(s.sites) != 11 {
		t.Fatalf("distinct violations: %d keys, %d sites, want 11, 11", len(s.vioKeys), len(s.sites))
	}
	// And the cap still halts the search.
	s.m.cfg.MaxViolations = 12
	s.addViolation(Corruption, "one more", 3, nil)
	if s.incomplete == "" {
		t.Fatal("violation cap did not mark the search incomplete")
	}
}
