package verify

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/par"
)

// step labels one transition of the product system: a process segment
// (optionally with a dropped field transition) or a quiescent tick.
type step struct {
	proc int8  // -1 = tick
	drop int16 // index into machine.drops, -1 = none
	tick int64 // clocks advanced when proc == -1
}

// node is one stored state plus its search bookkeeping. parent/via
// record the first (hence shortest, BFS) path for counterexamples.
type node struct {
	st      *state
	parent  int32
	via     step
	depth   int32
	enabled uint32
	open    bool
	// Sleep-set reduction bookkeeping: pendingMask holds transitions
	// awaiting exploration, explored the ones already taken. A later
	// arrival with a smaller sleep set re-opens the difference
	// (pendingMask |= newly allowed), which preserves every reachable
	// state despite state caching.
	pendingMask uint32
	explored    uint32
	needsTick   bool
	queued      bool
}

type edge struct {
	from, to int32
	via      step
}

type violationSite struct {
	kind Kind
	msg  string
	node int32
	loop []edge // livelock lasso, nil otherwise
}

// vioKey dedups violations by kind and message hash — two fixed-size
// words, unlike the formatted message strings the map used to retain.
// Hashing the message (rather than keying on the site node) keeps the
// dedup classes exactly those of the legacy (kind, message) keying:
// the same finding reached at many nodes still counts once, so the
// MaxViolations cap fires at the same point and the recorded state
// counts stay byte-identical. A 64-bit collision would only merge two
// distinct findings into one report — never a soundness hole.
type vioKey struct {
	kind Kind
	msg  uint64 // FNV-1a of the formatted message
}

type searcher struct {
	m           *machine
	ctx         context.Context
	nodes       []*node
	store       *store
	edges       []edge // transitions between open states (liveness graph)
	frontier    []int32
	sites       []*violationSite
	vioKeys     map[vioKey]bool
	transitions int64
	depth       int32
	incomplete  string
	// wpool recycles per-worker expansion buffers (key arena, confirm
	// scratch, successor slice) across layers.
	wpool sync.Pool
	// nodeArena chunk-allocates node storage: one allocation per 4096
	// admissions instead of one per node.
	nodeArena []node
	// Spill bookkeeping (Config.MemBudget > 0). hotBytes tracks the
	// estimated resident bytes of unsealed states; it is a pure function
	// of the admitted states (stateEst + key length, both deterministic),
	// so sealing decisions — and therefore everything — stay worker-
	// invariant. Sealed nodes are the prefix [0, sealed) of the node
	// array, whole BFS layers at a time (layerEnds records layer
	// boundaries as cumulative node counts).
	memBudget   int64
	hotBytes    int64
	stateEst    int64
	layerEnds   []int32
	sealed      int32
	sealedLayer int
	sealBuf     []byte
	// Reachable-set fingerprint: order-independent (xor + sum of mixed
	// state hashes), so it is identical at any worker count and any
	// memory budget — the invariant the persistent verify cache leans on.
	fpXor, fpSum uint64
}

func (s *searcher) newNode() *node {
	if len(s.nodeArena) == 0 {
		s.nodeArena = make([]node, 4096)
	}
	nn := &s.nodeArena[0]
	s.nodeArena = s.nodeArena[1:]
	return nn
}

// wctx is one expansion's reusable buffers. Successor keys are slices
// of the arena, recorded as offsets because append may move it.
type wctx struct {
	arena   []byte
	scratch []byte
	succs   []succOut
	ec      *execCtx
}

// succOut is one successor computed by a worker; everything the merge
// needs is precomputed so the sequential phase stays cheap. Workers
// pre-hash the binary key and pre-check it against the store (frozen
// during expansion): a hit fixes `existing` and drops the state and key
// on the spot, a miss carries the state plus its key (arena offsets)
// to the merge, which re-checks against in-layer insertions.
type succOut struct {
	via            step
	hash           uint64
	existing       int32 // pre-checked store hit; -1 = miss
	st             *state
	keyOff, keyEnd int32
	enabled        uint32
	open           bool
	sleep          uint32
	conflicts      []string
}

type expandOut struct {
	maskUsed uint32
	tickUsed bool
	w        *wctx
	err      error
}

func newSearcher(m *machine) *searcher {
	s := &searcher{
		m:         m,
		store:     newStore(),
		vioKeys:   make(map[vioKey]bool),
		memBudget: m.cfg.MemBudget,
	}
	s.store.lossy = m.cfg.Lossy
	// stateEst approximates one hot state's resident bytes beyond its
	// key: the shell's slice headers and backing arrays plus an interface
	// word pair per value. It only steers when layers seal; being an
	// estimate costs accuracy of the budget, never correctness — but it
	// must be deterministic, so it is derived from the machine's fixed
	// layout, never from runtime measurement.
	est := int64(160 + 16*len(m.globals) + m.nTrack)
	for _, prog := range m.progs {
		est += 48 + 16*int64(len(prog.locals))
	}
	s.stateEst = est
	return s
}

// stateOf returns node idx's state: the resident pointer for hot
// nodes, a freshly decoded copy (decoded=true) for sealed ones — the
// caller releases decoded shells back to the machine pool when done.
// Safe for concurrent use during expansion: sealed records are
// immutable and the spill read path is lock-free.
func (s *searcher) stateOf(idx int32) (st *state, decoded bool, err error) {
	if st := s.nodes[idx].st; st != nil {
		return st, false, nil
	}
	st, err = s.store.spill.readState(s.m, idx)
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// maybeSpill seals whole BFS layers, oldest first, whenever hot states
// exceed the memory budget, stopping at half the budget so seals are
// batched rather than per-layer. The newest completed layer always
// stays hot — it is (most of) the next frontier. Runs on the
// sequential path between layers.
func (s *searcher) maybeSpill() error {
	if s.store.spill == nil || s.hotBytes <= s.memBudget {
		return nil
	}
	target := s.memBudget / 2
	sealedAny := false
	for s.sealedLayer < len(s.layerEnds)-1 && s.hotBytes > target {
		end := s.layerEnds[s.sealedLayer]
		for idx := s.sealed; idx < end; idx++ {
			if err := s.sealNode(idx, s.sealedLayer); err != nil {
				return err
			}
		}
		s.sealed = end
		s.sealedLayer++
		sealedAny = true
	}
	if sealedAny {
		return s.store.spill.finishBatch()
	}
	return nil
}

// sealNode moves one node's state to the spill tier: re-encode
// (deterministically identical to the admission-time key), append the
// record, drop the hot index entry and recycle the shell. The node
// keeps all its search bookkeeping — only the state bytes leave RAM.
func (s *searcher) sealNode(idx int32, layer int) error {
	n := s.nodes[idx]
	st := n.st
	s.sealBuf = st.encodeInto(s.sealBuf[:0])
	keyLen := len(s.sealBuf)
	s.sealBuf = st.encodeTailsInto(s.sealBuf)
	h := hashKey(s.sealBuf[:keyLen])
	s.store.removeHot(h, idx)
	if err := s.store.spill.add(h, idx, layer, s.sealBuf, keyLen); err != nil {
		return err
	}
	n.st = nil
	s.hotBytes -= s.stateEst + int64(keyLen)
	s.m.release(st)
	return nil
}

// run explores the product state space breadth-first. Each layer is
// expanded in parallel (par.For over the frontier, results in slot
// order) and merged sequentially, so state numbering, verdicts and
// counts are identical at any worker count.
func (s *searcher) run() error {
	init := s.m.initialState()
	en, err := s.m.enabledMask(s.m.newExecCtx(), init)
	if err != nil {
		return err
	}
	w0 := &wctx{arena: init.encodeInto(nil)}
	if _, err := s.admit(&succOut{
		via: step{proc: -1, drop: -1}, hash: hashKey(w0.arena), existing: -1,
		st: init, keyOff: 0, keyEnd: int32(len(w0.arena)),
		enabled: en, open: s.m.open(init),
	}, -1, w0); err != nil {
		return err
	}
	s.layerEnds = append(s.layerEnds, int32(len(s.nodes)))

	for len(s.frontier) > 0 && s.incomplete == "" {
		s.depth++
		if s.m.cfg.MaxDepth > 0 && s.depth > int32(s.m.cfg.MaxDepth) {
			s.incomplete = fmt.Sprintf("depth bound %d reached", s.m.cfg.MaxDepth)
			break
		}
		layer := s.frontier
		s.frontier = nil
		results := make([]expandOut, len(layer))
		if err := par.ForCtx(s.ctx, len(layer), s.m.cfg.Workers, func(i int) {
			results[i] = s.expand(layer[i])
		}); err != nil {
			// Canceled mid-layer: unexpanded slots hold zero expandOuts
			// (nil wctx, no successors) — nothing to merge, nothing leaks
			// beyond pooled buffers the GC reclaims.
			return err
		}
		for i, idx := range layer {
			if err := s.merge(idx, results[i]); err != nil {
				return err
			}
			if s.incomplete != "" {
				break
			}
		}
		if s.incomplete == "" {
			s.layerEnds = append(s.layerEnds, int32(len(s.nodes)))
			if err := s.maybeSpill(); err != nil {
				return err
			}
		}
		if p := s.m.cfg.Progress; p != nil {
			p(len(s.nodes), int(s.depth))
		}
	}
	return nil
}

// expand computes every successor of one node: for each pending process
// its normal segment plus one drop variant per droppable field change,
// then the quiescent tick when nothing is enabled. Pure with respect to
// shared search state — mutation happens in merge. (The store is read,
// never written: pre-check hits against it stay valid because states
// are never removed.)
func (s *searcher) expand(idx int32) expandOut {
	n := s.nodes[idx]
	w, ok := s.wpool.Get().(*wctx)
	if !ok {
		w = &wctx{}
	}
	if w.ec == nil {
		w.ec = s.m.newExecCtx()
	}
	out := expandOut{maskUsed: n.pendingMask, tickUsed: n.needsTick, w: w}
	// A sealed node re-opened by fold is decoded from its spill record;
	// hot nodes expand from the resident state as before.
	nst, decoded, err := s.stateOf(idx)
	if err != nil {
		out.err = err
		return out
	}
	if decoded {
		defer s.m.release(nst)
	}
	// disallowed = the node's effective sleep set relative to enabled.
	disallowed := n.enabled &^ (n.pendingMask | n.explored)
	var earlier uint32
	for p := 0; p < len(s.m.progs); p++ {
		bit := uint32(1) << uint(p)
		if n.pendingMask&bit == 0 {
			continue
		}
		res, err := s.m.exec(w.ec, nst, p)
		if err != nil {
			out.err = err
			return out
		}
		sleep := (disallowed | n.explored | earlier) & s.m.indep[p]
		earlier |= bit
		normHit, err := s.emit(w, step{proc: int8(p), drop: -1}, res.st, sleep, res.conflicts)
		if err != nil {
			out.err = err
			return out
		}
		if nst.budget > 0 {
			for di, d := range s.m.drops {
				if !dropApplies(d, res.commits) {
					continue
				}
				ds := s.m.dropVariant(nst, res.st, di)
				// Conflicts belong to the shared segment and are already
				// reported on the normal successor.
				hit, err := s.emit(w, step{proc: int8(p), drop: int16(di)}, ds, sleep, nil)
				if err != nil {
					out.err = err
					return out
				}
				if hit {
					s.m.release(ds)
				}
			}
		}
		// The norm state seeds its drop variants above, so its shell is
		// only recyclable once they have all been derived.
		if normHit {
			s.m.release(res.st)
		}
	}
	if n.needsTick {
		ts, clocks, ok := s.m.tick(nst)
		if ok {
			// Time advance interacts with every timer: no sleep carries over.
			hit, err := s.emit(w, step{proc: -1, drop: -1, tick: clocks}, ts, 0, nil)
			if err != nil {
				out.err = err
				return out
			}
			if hit {
				s.m.release(ts)
			}
		}
	}
	return out
}

func dropApplies(d dropTarget, commits []commitEvent) bool {
	for _, c := range commits {
		if c.bus == d.bus && c.changed&(1<<uint(d.field)) != 0 {
			return true
		}
	}
	return false
}

// emit encodes one successor into the worker's arena, hashes it and
// pre-checks the frozen store. On a hit the key is discarded, the
// existing node index recorded, and the (now redundant) enabled-mask
// evaluation skipped entirely — the caller owns releasing the state.
// On a miss the key stays in the arena for the merge's re-check.
func (s *searcher) emit(w *wctx, via step, st *state, sleep uint32, conflicts []string) (hit bool, err error) {
	off := int32(len(w.arena))
	w.arena = st.encodeInto(w.arena)
	key := w.arena[off:]
	h := hashKey(key)
	j, scratch, ok, lerr := s.store.lookup(h, key, s.nodes, w.scratch)
	w.scratch = scratch
	if lerr != nil {
		return false, lerr
	}
	if ok {
		w.arena = w.arena[:off]
		w.succs = append(w.succs, succOut{
			via: via, hash: h, existing: j, sleep: sleep, conflicts: conflicts,
		})
		return true, nil
	}
	en, err := s.m.enabledMask(w.ec, st)
	if err != nil {
		return false, err
	}
	w.succs = append(w.succs, succOut{
		via: via, hash: h, existing: -1, st: st,
		keyOff: off, keyEnd: int32(len(w.arena)),
		enabled: en, open: s.m.open(st), sleep: sleep, conflicts: conflicts,
	})
	return false, nil
}

// merge folds one expansion into the store, in deterministic order.
// The node's queue flag is only finalized after all successors are
// admitted: a re-arrival (possibly a self-loop) can hand the node fresh
// pending bits mid-merge, and it must be re-queued for them.
func (s *searcher) merge(idx int32, out expandOut) error {
	defer s.recycle(out.w)
	if out.err != nil {
		return out.err
	}
	n := s.nodes[idx]
	n.explored |= out.maskUsed
	n.pendingMask &^= out.maskUsed
	if out.tickUsed {
		n.needsTick = false
	}
	for i := range out.w.succs {
		sc := &out.w.succs[i]
		s.transitions++
		j, err := s.admit(sc, idx, out.w)
		if err != nil {
			return err
		}
		if s.incomplete != "" {
			return nil
		}
		for _, msg := range sc.conflicts {
			s.addViolation(DriverConflict, msg, j, nil)
		}
		if n.open && s.nodes[j].open {
			s.edges = append(s.edges, edge{from: idx, to: j, via: sc.via})
		}
	}
	n.queued = n.pendingMask != 0 || n.needsTick
	if n.queued {
		s.frontier = append(s.frontier, idx)
	}
	return nil
}

// recycle clears a worker context (dropping its state and conflict
// references so pooled buffers don't pin dead objects) and returns it
// to the pool.
func (s *searcher) recycle(w *wctx) {
	if w == nil {
		return
	}
	for i := range w.succs {
		w.succs[i] = succOut{}
	}
	w.succs = w.succs[:0]
	w.arena = w.arena[:0]
	s.wpool.Put(w)
}

// admit stores a successor (or folds a re-arrival into the existing
// node) and classifies terminal and quiescent states. parent is -1 for
// the initial state. A pre-checked hit folds directly; a miss is
// re-checked against the store because an earlier merge slot of the
// same layer may have admitted the state already — in that case the
// duplicate's shell goes back to the pool.
func (s *searcher) admit(sc *succOut, parent int32, w *wctx) (int32, error) {
	if sc.existing >= 0 {
		s.fold(sc.existing, sc.sleep)
		return sc.existing, nil
	}
	key := w.arena[sc.keyOff:sc.keyEnd]
	ex, scratch, ok, err := s.store.lookup(sc.hash, key, s.nodes, w.scratch)
	w.scratch = scratch
	if err != nil {
		return 0, err
	}
	if ok {
		s.fold(ex, sc.sleep)
		s.m.release(sc.st)
		return ex, nil
	}
	j := int32(len(s.nodes))
	depth := int32(0)
	if parent >= 0 {
		depth = s.nodes[parent].depth + 1
	}
	nn := s.newNode()
	*nn = node{
		st: sc.st, parent: parent, via: sc.via, depth: depth,
		enabled: sc.enabled, open: sc.open,
		pendingMask: sc.enabled &^ sc.sleep,
	}
	s.nodes = append(s.nodes, nn)
	s.store.insert(sc.hash, j)
	s.hotBytes += s.stateEst + int64(sc.keyEnd-sc.keyOff)
	mixed := bloomMix(sc.hash)
	s.fpXor ^= mixed
	s.fpSum += mixed
	if s.m.cfg.MaxStates > 0 && len(s.nodes) > s.m.cfg.MaxStates {
		s.incomplete = fmt.Sprintf("state bound %d reached", s.m.cfg.MaxStates)
		return j, nil
	}
	if sc.enabled == 0 {
		hasTimer := false
		for p := range s.m.progs {
			if sc.st.ps[p].blocked && !sc.st.ps[p].fin && sc.st.ps[p].rem > 0 {
				hasTimer = true
				break
			}
		}
		nn.needsTick = hasTimer
		s.classifyQuiet(j, sc.st, hasTimer)
	}
	if nn.pendingMask != 0 || nn.needsTick {
		nn.queued = true
		s.frontier = append(s.frontier, j)
	}
	return j, nil
}

// fold merges a re-arrival into an existing node: an arrival with a
// smaller sleep set re-opens the newly allowed transitions.
func (s *searcher) fold(j int32, sleep uint32) {
	old := s.nodes[j]
	allowed := old.enabled &^ sleep
	if fresh := allowed &^ old.explored &^ old.pendingMask; fresh != 0 {
		old.pendingMask |= fresh
		if !old.queued {
			old.queued = true
			s.frontier = append(s.frontier, j)
		}
	}
}

// classifyQuiet inspects a state with no enabled process. Without
// pending timers it is terminal: either every foreground process
// finished (check data delivery) or the system is deadlocked. With
// timers but a closed bus and all foreground work done, the system is
// quiescent between server drain timeouts — the delivery check runs
// there too, the model analogue of the simulator's grace window.
func (s *searcher) classifyQuiet(j int32, st *state, hasTimer bool) {
	var finMask uint32
	for p := range s.m.progs {
		if st.ps[p].fin {
			finMask |= 1 << uint(p)
		}
	}
	fgDone := s.m.fgMask&^finMask == 0
	if !hasTimer && !fgDone {
		s.addViolation(Deadlock, "deadlock: "+s.m.describeState(st), j, nil)
		return
	}
	if fgDone && !s.m.open(st) {
		s.checkDelivery(j, st)
	}
}

// checkDelivery compares module-variable finals against the golden
// fault-free simulation. A run that aborted cleanly (any abort counter
// advanced) is excused; a silent mismatch is data corruption.
func (s *searcher) checkDelivery(j int32, st *state) {
	if s.m.expected == nil {
		return
	}
	aborted := false
	for _, slot := range s.m.abortSlots {
		if !valIsZero(st.g[slot]) {
			aborted = true
			break
		}
	}
	if aborted {
		return
	}
	skip := make(map[int]bool, len(s.m.abortSlots))
	for _, slot := range s.m.abortSlots {
		skip[slot] = true
	}
	for slot, want := range s.m.expected {
		if want == nil || skip[slot] {
			continue
		}
		if !st.g[slot].Equal(want) {
			s.addViolation(Corruption, fmt.Sprintf(
				"data delivery violated: %s = %s, golden run delivered %s (and no clean abort was signalled)",
				s.m.gname[slot], st.g[slot], want), j, nil)
			return
		}
	}
}

func (s *searcher) addViolation(kind Kind, msg string, node int32, loop []edge) {
	key := vioKey{kind: kind, msg: hashString(msg)}
	if s.vioKeys[key] {
		return
	}
	s.vioKeys[key] = true
	s.sites = append(s.sites, &violationSite{kind: kind, msg: msg, node: node, loop: loop})
	if max := s.m.cfg.MaxViolations; max > 0 && len(s.sites) >= max && s.incomplete == "" {
		s.incomplete = fmt.Sprintf("violation cap %d reached", max)
	}
}

// checkLiveness looks for a cycle in the open-state subgraph: a lasso
// along which some transaction strobe never returns to idle, i.e. a
// START that is never answered by a completed handshake or a clean
// abort. Runs after the search on the recorded edges.
func (s *searcher) checkLiveness() error {
	if len(s.edges) == 0 {
		return nil
	}
	adj := make(map[int32][]int)
	for i, e := range s.edges {
		adj[e.from] = append(adj[e.from], i)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int32]int8)
	type frameT struct {
		node int32
		next int
		in   int // edge index that entered this node, -1 for roots
	}
	for root := range s.nodes {
		r := int32(root)
		if color[r] != white || len(adj[r]) == 0 {
			continue
		}
		stack := []frameT{{node: r, in: -1}}
		color[r] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			es := adj[f.node]
			if f.next >= len(es) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			ei := es[f.next]
			f.next++
			to := s.edges[ei].to
			switch color[to] {
			case white:
				color[to] = grey
				stack = append(stack, frameT{node: to, in: ei})
			case grey:
				// Back edge: the lasso loop runs from `to` around to the
				// current node and back via ei.
				var loop []edge
				start := 0
				for i, fr := range stack {
					if fr.node == to {
						start = i
						break
					}
				}
				for _, fr := range stack[start+1:] {
					loop = append(loop, s.edges[fr.in])
				}
				loop = append(loop, s.edges[ei])
				st, decoded, err := s.stateOf(to)
				if err != nil {
					return err
				}
				desc := s.m.describeState(st)
				if decoded {
					s.m.release(st)
				}
				s.addViolation(Livelock, fmt.Sprintf(
					"bounded-response violated: a transaction stays open around a %d-transition cycle (%s)",
					len(loop), desc), to, loop)
				return nil
			}
		}
	}
	return nil
}

// pathTo reconstructs the BFS-shortest step sequence from the initial
// state to the node.
func (s *searcher) pathTo(node int32) []step {
	var steps []step
	for i := node; i > 0; i = s.nodes[i].parent {
		steps = append(steps, s.nodes[i].via)
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}
