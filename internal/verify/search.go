package verify

import (
	"fmt"

	"repro/internal/par"
)

// step labels one transition of the product system: a process segment
// (optionally with a dropped field transition) or a quiescent tick.
type step struct {
	proc int8  // -1 = tick
	drop int16 // index into machine.drops, -1 = none
	tick int64 // clocks advanced when proc == -1
}

// node is one stored state plus its search bookkeeping. parent/via
// record the first (hence shortest, BFS) path for counterexamples.
type node struct {
	st      *state
	parent  int32
	via     step
	depth   int32
	enabled uint32
	open    bool
	// Sleep-set reduction bookkeeping: pendingMask holds transitions
	// awaiting exploration, explored the ones already taken. A later
	// arrival with a smaller sleep set re-opens the difference
	// (pendingMask |= newly allowed), which preserves every reachable
	// state despite state caching.
	pendingMask uint32
	explored    uint32
	needsTick   bool
	queued      bool
}

type edge struct {
	from, to int32
	via      step
}

type violationSite struct {
	kind Kind
	msg  string
	node int32
	loop []edge // livelock lasso, nil otherwise
}

type searcher struct {
	m           *machine
	nodes       []*node
	index       map[string]int32
	edges       []edge // transitions between open states (liveness graph)
	frontier    []int32
	sites       []*violationSite
	vioKeys     map[string]bool
	transitions int64
	depth       int32
	incomplete  string
}

// succOut is one successor computed by a worker; everything the merge
// needs is precomputed so the sequential phase stays cheap.
type succOut struct {
	via       step
	key       string
	st        *state
	enabled   uint32
	open      bool
	sleep     uint32
	conflicts []string
}

type expandOut struct {
	maskUsed uint32
	tickUsed bool
	succs    []succOut
	err      error
}

func newSearcher(m *machine) *searcher {
	return &searcher{
		m:       m,
		index:   make(map[string]int32),
		vioKeys: make(map[string]bool),
	}
}

// run explores the product state space breadth-first. Each layer is
// expanded in parallel (par.For over the frontier, results in slot
// order) and merged sequentially, so state numbering, verdicts and
// counts are identical at any worker count.
func (s *searcher) run() error {
	init := s.m.initialState()
	en, err := s.m.enabledMask(init)
	if err != nil {
		return err
	}
	s.admit(succOut{via: step{proc: -1, drop: -1}, key: init.encode(), st: init, enabled: en, open: s.m.open(init)}, -1)

	for len(s.frontier) > 0 && s.incomplete == "" {
		s.depth++
		if s.m.cfg.MaxDepth > 0 && s.depth > int32(s.m.cfg.MaxDepth) {
			s.incomplete = fmt.Sprintf("depth bound %d reached", s.m.cfg.MaxDepth)
			break
		}
		layer := s.frontier
		s.frontier = nil
		results := make([]expandOut, len(layer))
		par.For(len(layer), s.m.cfg.Workers, func(i int) {
			results[i] = s.expand(layer[i])
		})
		for i, idx := range layer {
			if err := s.merge(idx, results[i]); err != nil {
				return err
			}
			if s.incomplete != "" {
				break
			}
		}
	}
	return nil
}

// expand computes every successor of one node: for each pending process
// its normal segment plus one drop variant per droppable field change,
// then the quiescent tick when nothing is enabled. Pure with respect to
// shared search state — mutation happens in merge.
func (s *searcher) expand(idx int32) expandOut {
	n := s.nodes[idx]
	out := expandOut{maskUsed: n.pendingMask, tickUsed: n.needsTick}
	// disallowed = the node's effective sleep set relative to enabled.
	disallowed := n.enabled &^ (n.pendingMask | n.explored)
	var earlier uint32
	for p := 0; p < len(s.m.progs); p++ {
		bit := uint32(1) << uint(p)
		if n.pendingMask&bit == 0 {
			continue
		}
		res, err := s.m.exec(n.st, p)
		if err != nil {
			out.err = err
			return out
		}
		sleep := (disallowed | n.explored | earlier) & s.m.indep[p]
		earlier |= bit
		if err := s.emit(&out, step{proc: int8(p), drop: -1}, res.st, sleep, res.conflicts); err != nil {
			out.err = err
			return out
		}
		if n.st.budget > 0 {
			for di, d := range s.m.drops {
				if !dropApplies(d, res.commits) {
					continue
				}
				ds := s.m.dropVariant(n.st, res.st, di)
				// Conflicts belong to the shared segment and are already
				// reported on the normal successor.
				if err := s.emit(&out, step{proc: int8(p), drop: int16(di)}, ds, sleep, nil); err != nil {
					out.err = err
					return out
				}
			}
		}
	}
	if n.needsTick {
		ts, clocks, ok := s.m.tick(n.st)
		if ok {
			// Time advance interacts with every timer: no sleep carries over.
			if err := s.emit(&out, step{proc: -1, drop: -1, tick: clocks}, ts, 0, nil); err != nil {
				out.err = err
				return out
			}
		}
	}
	return out
}

func dropApplies(d dropTarget, commits []commitEvent) bool {
	for _, c := range commits {
		if c.bus != d.bus {
			continue
		}
		for _, f := range c.changed {
			if f == d.field {
				return true
			}
		}
	}
	return false
}

func (s *searcher) emit(out *expandOut, via step, st *state, sleep uint32, conflicts []string) error {
	en, err := s.m.enabledMask(st)
	if err != nil {
		return err
	}
	out.succs = append(out.succs, succOut{
		via: via, key: st.encode(), st: st,
		enabled: en, open: s.m.open(st), sleep: sleep, conflicts: conflicts,
	})
	return nil
}

// merge folds one expansion into the store, in deterministic order.
// The node's queue flag is only finalized after all successors are
// admitted: a re-arrival (possibly a self-loop) can hand the node fresh
// pending bits mid-merge, and it must be re-queued for them.
func (s *searcher) merge(idx int32, out expandOut) error {
	if out.err != nil {
		return out.err
	}
	n := s.nodes[idx]
	n.explored |= out.maskUsed
	n.pendingMask &^= out.maskUsed
	if out.tickUsed {
		n.needsTick = false
	}
	for _, sc := range out.succs {
		s.transitions++
		j := s.admit(sc, idx)
		if s.incomplete != "" {
			return nil
		}
		for _, msg := range sc.conflicts {
			s.addViolation(DriverConflict, msg, j, nil)
		}
		if n.open && s.nodes[j].open {
			s.edges = append(s.edges, edge{from: idx, to: j, via: sc.via})
		}
	}
	n.queued = n.pendingMask != 0 || n.needsTick
	if n.queued {
		s.frontier = append(s.frontier, idx)
	}
	return nil
}

// admit stores a successor (or folds a re-arrival into the existing
// node) and classifies terminal and quiescent states. parent is -1 for
// the initial state.
func (s *searcher) admit(sc succOut, parent int32) int32 {
	if j, ok := s.index[sc.key]; ok {
		old := s.nodes[j]
		allowed := old.enabled &^ sc.sleep
		if fresh := allowed &^ old.explored &^ old.pendingMask; fresh != 0 {
			old.pendingMask |= fresh
			if !old.queued {
				old.queued = true
				s.frontier = append(s.frontier, j)
			}
		}
		return j
	}
	j := int32(len(s.nodes))
	depth := int32(0)
	if parent >= 0 {
		depth = s.nodes[parent].depth + 1
	}
	nn := &node{
		st: sc.st, parent: parent, via: sc.via, depth: depth,
		enabled: sc.enabled, open: sc.open,
		pendingMask: sc.enabled &^ sc.sleep,
	}
	s.nodes = append(s.nodes, nn)
	s.index[sc.key] = j
	if s.m.cfg.MaxStates > 0 && len(s.nodes) > s.m.cfg.MaxStates {
		s.incomplete = fmt.Sprintf("state bound %d reached", s.m.cfg.MaxStates)
		return j
	}
	if sc.enabled == 0 {
		hasTimer := false
		for p := range s.m.progs {
			if sc.st.blocked[p] && !sc.st.fin[p] && sc.st.rem[p] > 0 {
				hasTimer = true
				break
			}
		}
		nn.needsTick = hasTimer
		s.classifyQuiet(j, sc.st, hasTimer)
	}
	if nn.pendingMask != 0 || nn.needsTick {
		nn.queued = true
		s.frontier = append(s.frontier, j)
	}
	return j
}

// classifyQuiet inspects a state with no enabled process. Without
// pending timers it is terminal: either every foreground process
// finished (check data delivery) or the system is deadlocked. With
// timers but a closed bus and all foreground work done, the system is
// quiescent between server drain timeouts — the delivery check runs
// there too, the model analogue of the simulator's grace window.
func (s *searcher) classifyQuiet(j int32, st *state, hasTimer bool) {
	var finMask uint32
	for p := range s.m.progs {
		if st.fin[p] {
			finMask |= 1 << uint(p)
		}
	}
	fgDone := s.m.fgMask&^finMask == 0
	if !hasTimer && !fgDone {
		s.addViolation(Deadlock, "deadlock: "+s.m.describeState(st), j, nil)
		return
	}
	if fgDone && !s.m.open(st) {
		s.checkDelivery(j, st)
	}
}

// checkDelivery compares module-variable finals against the golden
// fault-free simulation. A run that aborted cleanly (any abort counter
// advanced) is excused; a silent mismatch is data corruption.
func (s *searcher) checkDelivery(j int32, st *state) {
	if s.m.expected == nil {
		return
	}
	aborted := false
	for _, slot := range s.m.abortSlots {
		if !valIsZero(st.g[slot]) {
			aborted = true
			break
		}
	}
	if aborted {
		return
	}
	skip := make(map[int]bool, len(s.m.abortSlots))
	for _, slot := range s.m.abortSlots {
		skip[slot] = true
	}
	for slot, want := range s.m.expected {
		if want == nil || skip[slot] {
			continue
		}
		if !st.g[slot].Equal(want) {
			s.addViolation(Corruption, fmt.Sprintf(
				"data delivery violated: %s = %s, golden run delivered %s (and no clean abort was signalled)",
				s.m.gname[slot], st.g[slot], want), j, nil)
			return
		}
	}
}

func (s *searcher) addViolation(kind Kind, msg string, node int32, loop []edge) {
	key := fmt.Sprintf("%d|%s", kind, msg)
	if s.vioKeys[key] {
		return
	}
	s.vioKeys[key] = true
	s.sites = append(s.sites, &violationSite{kind: kind, msg: msg, node: node, loop: loop})
	if max := s.m.cfg.MaxViolations; max > 0 && len(s.sites) >= max && s.incomplete == "" {
		s.incomplete = fmt.Sprintf("violation cap %d reached", max)
	}
}

// checkLiveness looks for a cycle in the open-state subgraph: a lasso
// along which some transaction strobe never returns to idle, i.e. a
// START that is never answered by a completed handshake or a clean
// abort. Runs after the search on the recorded edges.
func (s *searcher) checkLiveness() {
	if len(s.edges) == 0 {
		return
	}
	adj := make(map[int32][]int)
	for i, e := range s.edges {
		adj[e.from] = append(adj[e.from], i)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int32]int8)
	type frameT struct {
		node int32
		next int
		in   int // edge index that entered this node, -1 for roots
	}
	for root := range s.nodes {
		r := int32(root)
		if color[r] != white || len(adj[r]) == 0 {
			continue
		}
		stack := []frameT{{node: r, in: -1}}
		color[r] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			es := adj[f.node]
			if f.next >= len(es) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			ei := es[f.next]
			f.next++
			to := s.edges[ei].to
			switch color[to] {
			case white:
				color[to] = grey
				stack = append(stack, frameT{node: to, in: ei})
			case grey:
				// Back edge: the lasso loop runs from `to` around to the
				// current node and back via ei.
				var loop []edge
				start := 0
				for i, fr := range stack {
					if fr.node == to {
						start = i
						break
					}
				}
				for _, fr := range stack[start+1:] {
					loop = append(loop, s.edges[fr.in])
				}
				loop = append(loop, s.edges[ei])
				s.addViolation(Livelock, fmt.Sprintf(
					"bounded-response violated: a transaction stays open around a %d-transition cycle (%s)",
					len(loop), s.m.describeState(s.nodes[to].st)), to, loop)
				return
			}
		}
	}
}

// pathTo reconstructs the BFS-shortest step sequence from the initial
// state to the node.
func (s *searcher) pathTo(node int32) []step {
	var steps []step
	for i := node; i > 0; i = s.nodes[i].parent {
		steps = append(steps, s.nodes[i].via)
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}
