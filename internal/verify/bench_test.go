package verify

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/protogen"
	"repro/internal/spec"
)

// The two reference workloads of the perf harness (tools/bench records
// the same shapes in BENCH_verify.json). Synthesis runs outside the
// timer — the benchmarks measure Check, and report the checker's two
// budget currencies directly: explored states per second of wall time
// and heap bytes allocated per stored state.

// BenchmarkVerifyBaseline checks the unhardened full handshake under a
// one-drop budget (the EXPERIMENTS.md 369-state row).
func BenchmarkVerifyBaseline(b *testing.B) {
	benchVerify(b, false, Config{MaxDrops: 1})
}

// BenchmarkVerifyRobust checks the hardened protocol under a one-drop
// budget with a 50k-state bound — the state-heavy workload the codec,
// store and copy-on-write work is aimed at.
func BenchmarkVerifyRobust(b *testing.B) {
	benchVerify(b, true, Config{MaxDrops: 1, MaxStates: 50_000})
}

func benchVerify(b *testing.B, robust bool, vcfg Config) {
	b.ReportAllocs()
	var states uint64
	var heap uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := vcfg
		var sys *spec.System
		if robust {
			s, ref := refinePQ(b, robustCfg(false))
			sys, cfg.AbortVars = s, ref.AbortKeys()
		} else {
			sys, _ = refinePQ(b, protogen.Config{Protocol: spec.FullHandshake})
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		start := time.Now()
		rep, err := Check(sys, cfg)
		wall += time.Since(start)
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.States == 0 {
			b.Fatal("empty exploration")
		}
		states += uint64(rep.States)
		heap += m1.TotalAlloc - m0.TotalAlloc
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(states)/wall.Seconds(), "states/s")
	b.ReportMetric(float64(heap)/float64(states), "B/state")
}
