package verify

import (
	"repro/internal/sim"
)

// This file is the binary state codec: the dedup key the searcher's
// store hashes and confirms against. encodeInto must partition states
// exactly like the legacy string encode() — two states get equal byte
// keys iff their encode() strings are equal — because the recorded
// state counts (EXPERIMENTS.md) depend on the store's equivalence
// classes, not just on correctness. codec_test.go pins the equivalence
// over a generated corpus.
//
// Layout (all integers little-endian, fixed width):
//
//	globals     sim.AppendBinary per slot, in slot order
//	per process pc uint32 · flags byte (bit0 blocked, bit1 fin) ·
//	            rem uint64 · locals via sim.AppendBinary
//	lastW       one byte per tracked bus field
//	budget      uint16
//
// No per-field delimiters are needed: the machine fixes the global
// count, the process count and each process's local count, and every
// sim.AppendBinary rendering is self-delimiting, so the stream is
// uniquely decodable by position.

// encodeInto appends s's canonical binary key to dst and returns the
// extended slice. It allocates only when dst's capacity is exceeded —
// callers reuse per-worker scratch buffers across successors.
func (s *state) encodeInto(dst []byte) []byte {
	for _, v := range s.g {
		dst = sim.AppendBinary(dst, v)
	}
	for p := range s.l {
		pc := uint32(s.ps[p].pc)
		dst = append(dst, byte(pc), byte(pc>>8), byte(pc>>16), byte(pc>>24))
		var flags byte
		if s.ps[p].blocked {
			flags |= 1
		}
		if s.ps[p].fin {
			flags |= 2
		}
		dst = append(dst, flags)
		r := uint64(s.ps[p].rem)
		dst = append(dst,
			byte(r), byte(r>>8), byte(r>>16), byte(r>>24),
			byte(r>>32), byte(r>>40), byte(r>>48), byte(r>>56))
		for _, v := range s.l[p] {
			dst = sim.AppendBinary(dst, v)
		}
	}
	for _, w := range s.lastW {
		dst = append(dst, byte(w))
	}
	return append(dst, byte(s.budget), byte(s.budget>>8))
}

// FNV-1a, 64-bit. Inlined rather than hash/fnv so hashing a key is a
// single pass over the bytes with no Hash64 allocation per state.
const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

// hashKey returns the 64-bit FNV-1a hash of a binary state key — the
// only per-state datum the store retains.
func hashKey(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// hashString is hashKey for strings (violation-message dedup) without
// a []byte conversion allocation.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
