package verify

import (
	"fmt"

	"repro/internal/sim"
)

// This file is the binary state codec: the dedup key the searcher's
// store hashes and confirms against. encodeInto must partition states
// exactly like the legacy string encode() — two states get equal byte
// keys iff their encode() strings are equal — because the recorded
// state counts (EXPERIMENTS.md) depend on the store's equivalence
// classes, not just on correctness. codec_test.go pins the equivalence
// over a generated corpus.
//
// Layout (all integers little-endian, fixed width):
//
//	globals     sim.AppendBinary per slot, in slot order
//	per process pc uint32 · flags byte (bit0 blocked, bit1 fin) ·
//	            rem uint64 · locals via sim.AppendBinary
//	lastW       one byte per tracked bus field
//	budget      uint16
//
// No per-field delimiters are needed: the machine fixes the global
// count, the process count and each process's local count, and every
// sim.AppendBinary rendering is self-delimiting, so the stream is
// uniquely decodable by position.

// encodeInto appends s's canonical binary key to dst and returns the
// extended slice. It allocates only when dst's capacity is exceeded —
// callers reuse per-worker scratch buffers across successors.
func (s *state) encodeInto(dst []byte) []byte {
	for _, v := range s.g {
		dst = sim.AppendBinary(dst, v)
	}
	for p := range s.l {
		pc := uint32(s.ps[p].pc)
		dst = append(dst, byte(pc), byte(pc>>8), byte(pc>>16), byte(pc>>24))
		var flags byte
		if s.ps[p].blocked {
			flags |= 1
		}
		if s.ps[p].fin {
			flags |= 2
		}
		dst = append(dst, flags)
		r := uint64(s.ps[p].rem)
		dst = append(dst,
			byte(r), byte(r>>8), byte(r>>16), byte(r>>24),
			byte(r>>32), byte(r>>40), byte(r>>48), byte(r>>56))
		for _, v := range s.l[p] {
			dst = sim.AppendBinary(dst, v)
		}
	}
	for _, w := range s.lastW {
		dst = append(dst, byte(w))
	}
	return append(dst, byte(s.budget), byte(s.budget>>8))
}

// encodeTailsInto appends the extras stream that makes the dedup key
// losslessly decodable: full encodings of every array element the key
// omits (sim.AppendBinary conflates array tails past index 8 so that
// dedup classes match the legacy string store). The spill store
// persists key‖extras per sealed state; decodeState consumes both.
func (s *state) encodeTailsInto(dst []byte) []byte {
	for _, v := range s.g {
		dst = sim.AppendBinaryTails(dst, v)
	}
	for p := range s.l {
		for _, v := range s.l[p] {
			dst = sim.AppendBinaryTails(dst, v)
		}
	}
	return dst
}

// decodeState rebuilds a state from its key and extras streams — the
// inverse of (encodeInto, encodeTailsInto). The shell comes from the
// machine's pool like any cloneShared child, but every inner local
// slice is freshly allocated: pooled shells may still alias inner
// slices of live states. Malformed input (a torn spill record that
// passed its checksum by fluke, or a software bug) returns an error;
// the decoder never guesses.
func decodeState(m *machine, key, extras []byte) (*state, error) {
	st, ok := m.pool.Get().(*state)
	if !ok {
		st = &state{
			g:     make([]sim.Value, len(m.globals)),
			l:     make([][]sim.Value, len(m.progs)),
			ps:    make([]procState, len(m.progs)),
			lastW: make([]int8, m.nTrack),
		}
	}
	var err error
	for i := range st.g {
		if st.g[i], key, extras, err = sim.DecodeBinary(key, extras); err != nil {
			return nil, fmt.Errorf("verify: decode state global %d: %w", i, err)
		}
	}
	for p, prog := range m.progs {
		if len(key) < 13 {
			return nil, fmt.Errorf("verify: decode state: truncated process %d header", p)
		}
		st.ps[p] = procState{
			pc: int32(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24),
			blocked: key[4]&1 != 0,
			fin:     key[4]&2 != 0,
			rem: int64(uint64(key[5]) | uint64(key[6])<<8 | uint64(key[7])<<16 | uint64(key[8])<<24 |
				uint64(key[9])<<32 | uint64(key[10])<<40 | uint64(key[11])<<48 | uint64(key[12])<<56),
		}
		key = key[13:]
		loc := make([]sim.Value, len(prog.locals))
		for i := range loc {
			if loc[i], key, extras, err = sim.DecodeBinary(key, extras); err != nil {
				return nil, fmt.Errorf("verify: decode state proc %d local %d: %w", p, i, err)
			}
		}
		st.l[p] = loc
	}
	if len(key) < m.nTrack+2 {
		return nil, fmt.Errorf("verify: decode state: truncated trailer")
	}
	for i := 0; i < m.nTrack; i++ {
		st.lastW[i] = int8(key[i])
	}
	key = key[m.nTrack:]
	st.budget = int16(uint16(key[0]) | uint16(key[1])<<8)
	if len(key) != 2 || len(extras) != 0 {
		return nil, fmt.Errorf("verify: decode state: %d key and %d extras bytes left over", len(key)-2, len(extras))
	}
	return st, nil
}

// FNV-1a, 64-bit. Inlined rather than hash/fnv so hashing a key is a
// single pass over the bytes with no Hash64 allocation per state.
const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

// hashKey returns the 64-bit FNV-1a hash of a binary state key — the
// only per-state datum the store retains.
func hashKey(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// hashString is hashKey for strings (violation-message dedup) without
// a []byte conversion allocation.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
