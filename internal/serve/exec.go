package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/explore"
	"repro/internal/partition"
	"repro/internal/spec"
)

// executeFn is the job execution entry point; a var so tests can
// substitute a controlled executor to pin down queue/dedup/cancel
// interleavings without timing assumptions.
var executeFn = execute

// execute runs one request to completion and renders the response
// body. The body is a pure function of (spec, op, options minus
// Workers): no timestamps, no durations, no worker counts — that is
// what licenses the cache to replay it byte for byte.
//
// defaultWorkers replaces a zero Options.Workers so concurrent jobs
// split the CPUs instead of each claiming all of them; results are
// worker-invariant, so this affects latency only.
func execute(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
	sys, err := req.resolve()
	if err != nil {
		return nil, err
	}
	res := &ResultJSON{
		Op:       req.Op,
		SpecHash: specHash.String(),
		Key:      key.String(),
		System:   sys.Name,
	}

	if req.Op == OpSweep {
		if err := sweepInto(ctx, res, sys, req.Options, defaultWorkers); err != nil {
			return nil, err
		}
		return encodeBody(res)
	}

	opts, err := req.Options.coreOptions(req.Op)
	if err != nil {
		return nil, err
	}
	if opts.Workers == 0 {
		opts.Workers = defaultWorkers
	}
	opts.VerifyProgress = progress
	rep, err := core.SynthesizeCtx(ctx, sys, opts)
	if err != nil {
		return nil, err
	}
	res.Buses = busesJSON(rep)
	res.Verify = NewVerifyJSON(rep.Verify)
	res.Repair = NewRepairJSON(rep.Repair)
	vhdlDigest(res, emitVHDL(sys))
	return encodeBody(res)
}

// sweepInto runs the design-space exploration op: derive channels if
// the spec declared none, sweep the first bus group (or the whole
// channel set), and report the grid plus its Pareto frontier.
func sweepInto(ctx context.Context, res *ResultJSON, sys *spec.System, o Options, defaultWorkers int) error {
	if len(sys.Channels) == 0 {
		if _, err := partition.DeriveChannels(sys); err != nil {
			return err
		}
	}
	if len(sys.Channels) == 0 {
		return fmt.Errorf("system %s has no inter-module communication to sweep", sys.Name)
	}
	channels := sys.Channels
	if len(sys.Buses) > 0 && len(sys.Buses[0].Channels) > 0 {
		channels = sys.Buses[0].Channels
	}
	workers := o.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	sp, err := explore.SweepCtx(ctx, channels, estimate.New(sys.Channels), explore.Config{
		MinWidth:      o.MinWidth,
		MaxWidth:      o.MaxWidth,
		IncludeRobust: o.IncludeRobust,
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	for _, p := range sp.Points {
		res.Points = append(res.Points, newPointJSON(p))
	}
	for _, p := range sp.Pareto() {
		res.Pareto = append(res.Pareto, newPointJSON(p))
	}
	return nil
}

// encodeBody renders the response body: compact JSON plus a trailing
// newline. encoding/json emits struct fields in declaration order and
// ResultJSON contains no maps, so the encoding is deterministic.
func encodeBody(res *ResultJSON) ([]byte, error) {
	b, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
