package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
)

// newTestServer builds a server + httptest frontend; the cleanup closes
// both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// swapExecutor installs a test executor and restores the real one on
// cleanup. Tests using it cannot run in parallel with each other.
func swapExecutor(t *testing.T, fn func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error)) {
	t.Helper()
	old := executeFn
	executeFn = fn
	t.Cleanup(func() { executeFn = old })
}

// TestQueryEndToEnd drives the real pipeline over HTTP: synthesize +
// verify a PQ variant, then replay it — the cached response must be
// byte-identical to the fresh one, distinguished only by X-Cache.
func TestQueryEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"op":"synthesize","workload":"pq-solo","options":{"verify":true}}`

	resp1, body1 := postJSON(t, ts.URL+"/v1/query", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fresh query: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("fresh query X-Cache = %q, want miss", got)
	}
	var res ResultJSON
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Op != OpSynthesize || res.SpecHash == "" || res.Key == "" {
		t.Fatalf("result header incomplete: %+v", res)
	}
	if len(res.Buses) == 0 {
		t.Fatalf("no buses in result")
	}
	if res.Verify == nil || !res.Verify.Clean {
		t.Fatalf("verify missing or not clean: %+v", res.Verify)
	}
	if res.VHDLSHA256 == "" || res.VHDLBytes == 0 {
		t.Fatalf("vhdl digest missing: %+v", res)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/query", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached query: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("cached query X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs from fresh body:\nfresh:  %s\ncached: %s", body1, body2)
	}
}

// TestQuerySweep exercises the sweep op end to end.
func TestQuerySweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/query", `{"op":"sweep","workload":"pq","options":{"include_robust":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var res ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(res.Points) == 0 || len(res.Pareto) == 0 {
		t.Fatalf("sweep returned %d points, %d pareto", len(res.Points), len(res.Pareto))
	}
}

// TestKeyWorkerInvariance: Workers is a latency knob, not a semantic
// one — requests differing only in Workers must share a cache key, and
// any semantic difference must split it.
func TestKeyWorkerInvariance(t *testing.T) {
	a := &Request{Op: OpSynthesize, Workload: "pq", Options: Options{Workers: 1}}
	b := &Request{Op: OpSynthesize, Workload: "pq", Options: Options{Workers: 7}}
	ka, ha, err := a.key()
	if err != nil {
		t.Fatal(err)
	}
	kb, hb, err := b.key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("keys differ across Workers values: %s vs %s", ka, kb)
	}
	if ha != hb {
		t.Fatalf("spec digests differ: %s vs %s", ha, hb)
	}
	c := &Request{Op: OpSynthesize, Workload: "pq", Options: Options{Robust: true}}
	kc, _, err := c.key()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatalf("robust option did not change the key")
	}
	d := &Request{Op: OpVerify, Workload: "pq"}
	kd, _, err := d.key()
	if err != nil {
		t.Fatal(err)
	}
	if kd == ka {
		t.Fatalf("op did not change the key")
	}
}

// TestInflightDedup is satellite 4's server half: two identical
// concurrent requests must share one job and produce two identical
// responses. The test executor blocks until released, so the
// interleaving is exact: request A starts the job, request B joins it.
func TestInflightDedup(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`{"ok":true}` + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, ts := newTestServer(t, Config{Workers: 1})

	req := `{"op":"synthesize","workload":"pq"}`
	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, 2)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/v1/query", req)
		replies <- reply{resp.StatusCode, resp.Header.Get("X-Cache"), body}
	}
	wg.Add(1)
	go post()
	<-started // job is running; a second identical request must dedup
	wg.Add(1)
	go post()
	waitFor(t, "dedup join", func() bool { return s.dedups.Load() == 1 })
	close(release)
	wg.Wait()
	close(replies)

	var dispositions []string
	var bodies [][]byte
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		dispositions = append(dispositions, r.cache)
		bodies = append(bodies, r.body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("deduped responses differ: %s vs %s", bodies[0], bodies[1])
	}
	got := strings.Join(dispositions, "+")
	if got != "miss+dedup" && got != "dedup+miss" {
		t.Fatalf("dispositions = %s, want one miss and one dedup", got)
	}
	if n := s.jobsStarted.Load(); n != 1 {
		t.Fatalf("jobs started = %d, want 1 (single shared job)", n)
	}
	if n := s.jobsDone.Load(); n != 1 {
		t.Fatalf("jobs done = %d, want 1", n)
	}
}

// TestCancelOnDisconnect: a client abandoning a query drops its
// reference; with no other waiter the job's context cancels, the run
// unwinds, and the cancel latency lands in the metrics.
func TestCancelOnDisconnect(t *testing.T) {
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done() // a canceled engine run returns ctx.Err(), never a body
		return nil, ctx.Err()
	})
	s, ts := newTestServer(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(`{"op":"synthesize","workload":"pq"}`))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel() // client hangs up mid-run
	if err := <-errc; err == nil {
		t.Fatalf("abandoned request returned without error")
	}
	waitFor(t, "job canceled", func() bool { return s.jobsCanceled.Load() == 1 })
	if n := s.clientsGone.Load(); n != 1 {
		t.Fatalf("clients gone = %d, want 1", n)
	}
	if s.cancelNsSum.Load() <= 0 {
		t.Fatalf("cancel latency not recorded")
	}
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("canceled job still in inflight table")
	}
}

// TestDedupSurvivesOneWaiterLeaving: when two clients share a job and
// one hangs up, the job must keep running for the other.
func TestDedupSurvivesOneWaiterLeaving(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`{"ok":true}` + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"op":"synthesize","workload":"pq"}`

	// First client starts the job.
	ctx1, cancel1 := context.WithCancel(context.Background())
	hreq1, _ := http.NewRequestWithContext(ctx1, http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
	hreq1.Header.Set("Content-Type", "application/json")
	gone1 := make(chan struct{})
	go func() {
		resp, _ := http.DefaultClient.Do(hreq1)
		if resp != nil {
			resp.Body.Close()
		}
		close(gone1)
	}()
	<-started

	// Second client joins it, then the first leaves.
	type result struct {
		status int
		body   []byte
	}
	res2 := make(chan result, 1)
	go func() {
		resp, b := postJSON(t, ts.URL+"/v1/query", body)
		res2 <- result{resp.StatusCode, b}
	}()
	waitFor(t, "second waiter joined", func() bool { return s.dedups.Load() == 1 })
	cancel1()
	<-gone1
	waitFor(t, "first waiter unref'd", func() bool { return s.clientsGone.Load() == 1 })

	// The job must still be live; release it and the survivor gets the
	// result.
	close(release)
	r := <-res2
	if r.status != http.StatusOK {
		t.Fatalf("surviving waiter got status %d: %s", r.status, r.body)
	}
	if s.jobsCanceled.Load() != 0 {
		t.Fatalf("job canceled despite a remaining waiter")
	}
}

// TestQueueFull: a bounded queue rejects with 503 instead of buffering
// without limit.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte("{}\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Distinct requests so none dedup: one runs, one queues, the third
	// must bounce. Each stage is confirmed before the next request goes
	// out, so the 503 is deterministic, not a race.
	reqN := func(n int) string {
		return fmt.Sprintf(`{"op":"synthesize","workload":"pq","options":{"verify_states":%d}}`, 1000+n)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/query", reqN(0))
	}()
	<-started // worker busy with reqN(0)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/query", reqN(1))
	}()
	waitFor(t, "second job queued", func() bool { return len(s.queue) == 1 })
	resp, body := postJSON(t, ts.URL+"/v1/query", reqN(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	close(release)
	wg.Wait()
}

// TestAsyncJobLifecycle drives the async surface: submit, poll status,
// stream events, fetch the result, then replay as a cache hit.
func TestAsyncJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		progress(50000, 40) // past the throttle thresholds → published
		select {
		case <-release:
			return []byte(`{"done":true}` + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"op":"synthesize","workload":"pq"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Key == "" || sub.Status != "miss" {
		t.Fatalf("submit reply incomplete: %+v", sub)
	}
	<-started

	var st struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	getStatus := func() {
		resp, body := func() (*http.Response, []byte) {
			r, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			b, _ := io.ReadAll(r.Body)
			return r, b
		}()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get: status %d", resp.StatusCode)
		}
		st = struct {
			Status string          `json:"status"`
			Result json.RawMessage `json:"result"`
		}{}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	getStatus()
	if st.Status != "running" {
		t.Fatalf("status = %q, want running", st.Status)
	}
	close(release)
	waitFor(t, "job done", func() bool { getStatus(); return st.Status == "done" })
	if string(st.Result) != `{"done":true}` {
		t.Fatalf("result = %s", st.Result)
	}

	// Event stream replays the full history after completion.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	events, _ := io.ReadAll(eresp.Body)
	for _, kind := range []string{`"queued"`, `"started"`, `"progress"`, `"done"`} {
		if !strings.Contains(string(events), kind) {
			t.Fatalf("event stream missing %s:\n%s", kind, events)
		}
	}
	if !strings.Contains(string(events), `"states":50000`) {
		t.Fatalf("progress event lost its state count:\n%s", events)
	}

	// Same request again: now a synchronous cache hit.
	resp2, body2 := postJSON(t, ts.URL+"/v1/jobs", `{"op":"synthesize","workload":"pq"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d", resp2.StatusCode)
	}
	if !strings.Contains(string(body2), `"status":"hit"`) {
		t.Fatalf("replay not a hit: %s", body2)
	}
}

// TestExplicitJobCancel: DELETE on a sole-waiter job cancels it.
func TestExplicitJobCancel(t *testing.T) {
	started := make(chan struct{}, 8)
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"op":"synthesize","workload":"pq"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	<-started

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if !strings.Contains(string(db), `"canceling":true`) {
		t.Fatalf("cancel reply: %s", db)
	}
	waitFor(t, "job canceled", func() bool { return s.jobsCanceled.Load() == 1 })
}

// TestBadRequests covers the rejection surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"unknown op", `{"op":"transmogrify","workload":"pq"}`},
		{"no spec or workload", `{"op":"synthesize"}`},
		{"both spec and workload", `{"op":"synthesize","workload":"pq","spec":"system S is end S;"}`},
		{"unknown field", `{"op":"synthesize","workload":"pq","bogus":1}`},
		{"bad protocol", `{"op":"synthesize","workload":"pq","options":{"protocol":"quarter"}}`},
		{"unknown workload", `{"op":"synthesize","workload":"hypercube"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/query", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
		})
	}
}

// TestMetricsAndHealthz sanity-checks the observation endpoints.
func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	postJSON(t, ts.URL+"/v1/query", `{"op":"synthesize","workload":"pq"}`)
	postJSON(t, ts.URL+"/v1/query", `{"op":"synthesize","workload":"pq"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		"ifsynd_requests_total 2",
		"ifsynd_cache_hits_total 1",
		"ifsynd_jobs_done_total 1",
		"ifsynd_workers 2",
	} {
		if !strings.Contains(string(b), line) {
			t.Fatalf("metrics missing %q:\n%s", line, b)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("healthz: %s", hb)
	}
}

// TestCacheLRU exercises the store's bounds directly.
func TestCacheLRU(t *testing.T) {
	c := newResultCache(2, 1<<20, nil)
	k := func(i byte) Key { return Key{i} }
	c.put(k(1), []byte("one"))
	c.put(k(2), []byte("two"))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 missing")
	}
	c.put(k(3), []byte("three")) // evicts k2 (LRU), not k1 (just touched)
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted out of LRU order")
	}
	entries, _, _, _, evictions := c.stats()
	if entries != 2 || evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", entries, evictions)
	}

	// Byte bound: an oversized body is skipped, not cached.
	small := newResultCache(16, 8, nil)
	small.put(k(9), []byte("far too large for the bound"))
	if _, ok := small.get(k(9)); ok {
		t.Fatal("oversized body should not be cached")
	}
}
