package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of jobs executed concurrently (0 =
	// GOMAXPROCS). Each job's internal parallelism defaults to
	// GOMAXPROCS / Workers so a full pool saturates the CPUs once.
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (0 = 256); past
	// it, submissions are rejected with 503 rather than buffered
	// without bound.
	QueueDepth int
	// CacheEntries and CacheBytes bound the result cache's LRU store
	// (0 = 1024 entries / 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// CacheDir, when set, persists completed result bodies to disk
	// (one checksummed file per content-addressed key), so repeat
	// queries — a re-verify of an already-checked spec in particular —
	// are served across daemon restarts without recomputation. "" keeps
	// the cache memory-only.
	CacheDir string
}

// Server is the synthesis service: a bounded job pool, a
// content-addressed result cache, and the HTTP surface over them.
type Server struct {
	cfg   Config
	cache *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight map[Key]*job
	jobs     map[string]*job
	jobOrder []string // completed-job retention ring (oldest first)

	nextID atomic.Int64

	// Metrics. Cache hit/miss/eviction counters live in the cache.
	requests     atomic.Int64
	dedups       atomic.Int64
	queueRejects atomic.Int64
	jobsStarted  atomic.Int64
	jobsDone     atomic.Int64
	jobsCanceled atomic.Int64
	jobsFailed   atomic.Int64
	cancelNsSum  atomic.Int64
	cancelNsMax  atomic.Int64
	running      atomic.Int64
	clientsGone  atomic.Int64
}

const maxRetainedJobs = 1024

// New starts a server: cfg.Workers goroutines draining the job queue.
// Callers must Close it to stop them. An unusable CacheDir is the only
// construction failure.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	var disk *diskCache
	if cfg.CacheDir != "" {
		var err error
		if disk, err = newDiskCache(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheEntries, cfg.CacheBytes, disk),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		inflight:   make(map[Key]*job),
		jobs:       make(map[string]*job),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Close cancels every in-flight job and stops the workers. Safe to
// call once; the server must not be used after.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	close(s.queue)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job and publishes its completion. The job leaves
// the inflight table before its done channel closes, so a request
// arriving after completion starts fresh (and hits the cache).
func (s *Server) run(j *job) {
	s.running.Add(1)
	s.jobsStarted.Add(1)
	defer s.running.Add(-1)

	var body []byte
	var err error
	if err = j.ctx.Err(); err == nil {
		j.publish("started", "", 0, 0)
		defaultWorkers := runtime.GOMAXPROCS(0) / s.cfg.Workers
		if defaultWorkers < 1 {
			defaultWorkers = 1
		}
		body, err = executeFn(j.ctx, j.req, j.key, j.specHash, defaultWorkers, j.progressHook())
	}
	ended := time.Now()
	if lat := j.cancelLatency(ended); lat > 0 {
		s.cancelNsSum.Add(lat.Nanoseconds())
		for {
			old := s.cancelNsMax.Load()
			if lat.Nanoseconds() <= old || s.cancelNsMax.CompareAndSwap(old, lat.Nanoseconds()) {
				break
			}
		}
	}

	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()

	switch {
	case err == nil:
		j.body = body
		s.cache.put(j.key, body)
		s.jobsDone.Add(1)
		j.publish("done", "", 0, 0)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.err = err
		s.jobsCanceled.Add(1)
		j.publish("canceled", err.Error(), 0, 0)
	default:
		j.err = err
		s.jobsFailed.Add(1)
		j.publish("error", err.Error(), 0, 0)
	}
	close(j.done)
	j.cancel()
}

// errBusy reports a full queue; mapped to 503.
var errBusy = errors.New("job queue full")

// submitStatus classifies a submission.
type submitStatus string

const (
	statusHit   submitStatus = "hit"
	statusMiss  submitStatus = "miss"
	statusDedup submitStatus = "dedup"
)

// submit routes one request: cache hit (body returned directly),
// in-flight dedup (joins the existing job with a new reference), or a
// fresh job enqueued on the pool.
func (s *Server) submit(req *Request) (*job, []byte, submitStatus, error) {
	key, specHash, err := req.key()
	if err != nil {
		return nil, nil, "", err
	}
	if body, ok := s.cache.get(key); ok {
		return nil, body, statusHit, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, "", errors.New("server shutting down")
	}
	if j := s.inflight[key]; j != nil && j.ref() {
		s.mu.Unlock()
		s.dedups.Add(1)
		return j, nil, statusDedup, nil
	}
	id := fmt.Sprintf("j%06d", s.nextID.Add(1))
	j := newJob(id, key, req, s.baseCtx)
	j.specHash = specHash
	s.inflight[key] = j
	s.retainJobLocked(j)
	s.mu.Unlock()

	select {
	case s.queue <- j:
		j.publish("queued", "", 0, 0)
		return j, nil, statusMiss, nil
	default:
		s.queueRejects.Add(1)
		s.mu.Lock()
		if s.inflight[key] == j {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		j.err = errBusy
		close(j.done)
		j.cancel()
		return nil, nil, "", errBusy
	}
}

// retainJobLocked registers the job for /v1/jobs lookup, evicting the
// oldest completed entries past the retention bound. Callers hold s.mu.
func (s *Server) retainJobLocked(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > maxRetainedJobs {
		old := s.jobs[s.jobOrder[0]]
		if old != nil {
			select {
			case <-old.done:
			default:
				// Oldest job still live (saturated pool): retain it and
				// accept a transiently larger table.
				return
			}
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the HTTP surface:
//
//	POST   /v1/query            run (or replay) a request synchronously
//	POST   /v1/jobs             submit asynchronously → job id
//	GET    /v1/jobs/{id}        job status + result when done
//	GET    /v1/jobs/{id}/events SSE stream of job progress
//	DELETE /v1/jobs/{id}        drop the submitter's reference (cancels
//	                            when no other waiter remains)
//	GET    /healthz             liveness + pool shape
//	GET    /metrics             text metrics (cache, dedup, cancels)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

const maxRequestBytes = 8 << 20

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return nil, false
	}
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	return &req, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.requests.Add(1)
	j, body, status, err := s.submit(req)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable
		} else if j == nil {
			code = http.StatusBadRequest
		}
		httpError(w, code, err.Error())
		return
	}
	if status == statusHit {
		writeResult(w, body, status, "")
		return
	}
	select {
	case <-j.done:
		if j.err != nil {
			code := http.StatusInternalServerError
			if errors.Is(j.err, context.Canceled) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, j.err.Error())
			return
		}
		writeResult(w, j.body, status, j.id)
	case <-r.Context().Done():
		// Client hung up: drop our reference; the last waiter out
		// cancels the job's explore/verify work mid-BFS.
		s.clientsGone.Add(1)
		j.unref()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.requests.Add(1)
	j, body, status, err := s.submit(req)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable
		} else if j == nil {
			code = http.StatusBadRequest
		}
		httpError(w, code, err.Error())
		return
	}
	resp := map[string]any{"status": string(status)}
	w.Header().Set("Content-Type", "application/json")
	if status == statusHit {
		resp["result"] = json.RawMessage(body)
	} else {
		resp["id"] = j.id
		resp["key"] = j.key.String()
		w.WriteHeader(http.StatusAccepted)
	}
	writeJSON(w, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	resp := map[string]any{"id": j.id, "key": j.key.String()}
	select {
	case <-j.done:
		switch {
		case j.err == nil:
			resp["status"] = "done"
			resp["result"] = json.RawMessage(j.body)
		case errors.Is(j.err, context.Canceled):
			resp["status"] = "canceled"
			resp["error"] = j.err.Error()
		default:
			resp["status"] = "error"
			resp["error"] = j.err.Error()
		}
	default:
		resp["status"] = j.phase()
	}
	writeJSON(w, resp)
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	from := 0
	for {
		evs, notify := j.watch(from)
		for _, ev := range evs {
			b, _ := json.Marshal(ev)
			fmt.Fprintf(w, "data: %s\n\n", b)
			from++
		}
		fl.Flush()
		select {
		case <-notify:
		case <-j.done:
			// Drain events published between watch and done, then end.
			if evs, _ := j.watch(from); len(evs) == 0 {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	canceled := j.unref()
	writeJSON(w, map[string]any{"id": j.id, "canceling": canceled})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":  "ok",
		"workers": s.cfg.Workers,
		"running": s.running.Load(),
		"queued":  len(s.queue),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	entries, bytes, hits, misses, evictions := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ifsynd_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "ifsynd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "ifsynd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "ifsynd_cache_entries %d\n", entries)
	fmt.Fprintf(w, "ifsynd_cache_bytes %d\n", bytes)
	fmt.Fprintf(w, "ifsynd_cache_evictions_total %d\n", evictions)
	var dHits, dMisses, dWrites, dErrs int64
	if s.cache.disk != nil {
		dHits, dMisses, dWrites, dErrs = s.cache.disk.stats()
	}
	fmt.Fprintf(w, "ifsynd_cache_disk_hits_total %d\n", dHits)
	fmt.Fprintf(w, "ifsynd_cache_disk_misses_total %d\n", dMisses)
	fmt.Fprintf(w, "ifsynd_cache_disk_writes_total %d\n", dWrites)
	fmt.Fprintf(w, "ifsynd_cache_disk_errors_total %d\n", dErrs)
	fmt.Fprintf(w, "ifsynd_inflight_dedup_total %d\n", s.dedups.Load())
	fmt.Fprintf(w, "ifsynd_queue_rejects_total %d\n", s.queueRejects.Load())
	fmt.Fprintf(w, "ifsynd_jobs_started_total %d\n", s.jobsStarted.Load())
	fmt.Fprintf(w, "ifsynd_jobs_done_total %d\n", s.jobsDone.Load())
	fmt.Fprintf(w, "ifsynd_jobs_canceled_total %d\n", s.jobsCanceled.Load())
	fmt.Fprintf(w, "ifsynd_jobs_failed_total %d\n", s.jobsFailed.Load())
	fmt.Fprintf(w, "ifsynd_jobs_running %d\n", s.running.Load())
	fmt.Fprintf(w, "ifsynd_jobs_queued %d\n", len(s.queue))
	fmt.Fprintf(w, "ifsynd_clients_gone_total %d\n", s.clientsGone.Load())
	fmt.Fprintf(w, "ifsynd_cancel_latency_ns_total %d\n", s.cancelNsSum.Load())
	fmt.Fprintf(w, "ifsynd_cancel_latency_ns_max %d\n", s.cancelNsMax.Load())
	fmt.Fprintf(w, "ifsynd_workers %d\n", s.cfg.Workers)
}

// writeResult writes a completed (or cached) body with its cache
// disposition in X-Cache — the header, not the body, because cached
// and fresh bodies must be byte-identical.
func writeResult(w http.ResponseWriter, body []byte, status submitStatus, jobID string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", string(status))
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(b, '\n'))
}
