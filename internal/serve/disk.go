package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// diskCache is the persistent tier behind the in-memory result LRU:
// one file per cache key under a configured directory, so a repeat
// verify survives daemon restarts and is answered from disk in
// milliseconds instead of re-exploring the state space. It is sound
// for the same reason the RAM cache is: response bodies are pure
// functions of the content-addressed key (worker counts, memory
// budgets and timestamps are all excluded or key-relevant), so a
// stored body IS the body a fresh run would produce.
//
// Each file carries a magic string and the sha256 of the body; a file
// that fails either check (torn write, bit rot, truncation) is
// removed and treated as a miss — corruption can cost a recompute,
// never a wrong answer.
type diskCache struct {
	dir string

	hits, misses, writes, errors atomic.Int64
}

// diskMagic versions the file format AND the key space: bump the
// request key frame (request.go) whenever response shapes change, so
// stale bodies from older builds can never be served.
const diskMagic = "IFSYNDC1"

func newDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (d *diskCache) path(k Key) string {
	return filepath.Join(d.dir, k.String()+".res")
}

// get loads and verifies the body stored for k. Any malformed file is
// deleted and reported as a miss.
func (d *diskCache) get(k Key) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	if len(raw) < len(diskMagic)+sha256.Size || string(raw[:len(diskMagic)]) != diskMagic {
		d.corrupt(k)
		return nil, false
	}
	sum := raw[len(diskMagic) : len(diskMagic)+sha256.Size]
	body := raw[len(diskMagic)+sha256.Size:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		d.corrupt(k)
		return nil, false
	}
	d.hits.Add(1)
	return body, true
}

func (d *diskCache) corrupt(k Key) {
	os.Remove(d.path(k))
	d.errors.Add(1)
	d.misses.Add(1)
}

// put writes the body through atomically: temp file in the same
// directory, then rename, so a crashed daemon leaves either the old
// entry, the new entry, or a stray .tmp — never a half-written
// readable file. Write failures are counted and dropped; the disk
// tier degrades to the RAM tier, it never fails a request.
func (d *diskCache) put(k Key, body []byte) {
	f, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		d.errors.Add(1)
		return
	}
	sum := sha256.Sum256(body)
	_, err = f.Write([]byte(diskMagic))
	if err == nil {
		_, err = f.Write(sum[:])
	}
	if err == nil {
		_, err = f.Write(body)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), d.path(k))
	}
	if err != nil {
		os.Remove(f.Name())
		d.errors.Add(1)
		return
	}
	d.writes.Add(1)
}

// stats snapshots the counters.
func (d *diskCache) stats() (hits, misses, writes, errs int64) {
	return d.hits.Load(), d.misses.Load(), d.writes.Load(), d.errors.Load()
}
