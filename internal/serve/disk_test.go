package serve

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/spec"
)

// TestDiskCacheRoundTrip exercises the file format directly: put/get
// round-trip, miss on absent key, and removal of files that fail the
// magic or digest check.
func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := newDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	k[0] = 7
	if _, ok := d.get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	body := []byte(`{"result":"ok"}` + "\n")
	d.put(k, body)
	got, ok := d.get(k)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get = (%q, %v), want stored body", got, ok)
	}

	// A flipped byte in the body must fail the digest and delete the file.
	path := d.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.get(k); ok {
		t.Fatal("corrupted entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupted entry not removed: %v", err)
	}

	// Same for a wrong magic (e.g. a file from a different tool).
	if err := os.WriteFile(path, []byte("NOTMAGIC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.get(k); ok {
		t.Fatal("foreign file served")
	}
	if hits, _, writes, errs := d.stats(); hits != 1 || writes != 1 || errs != 2 {
		t.Fatalf("stats = hits %d writes %d errs %d, want 1, 1, 2", hits, writes, errs)
	}
}

// TestDiskCachePersistsAcrossRestarts is the incremental-verify
// acceptance pin: a second daemon instance pointed at the same cache
// directory must answer a repeated query from the persistent store —
// byte-identically, and without re-running the engine.
func TestDiskCachePersistsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int64
	swapExecutor(t, func(ctx context.Context, req *Request, key Key, specHash spec.Digest, defaultWorkers int, progress func(states, depth int)) ([]byte, error) {
		execs.Add(1)
		return []byte(`{"verdict":"clean","fingerprint":"abcd-ef01"}` + "\n"), nil
	})
	req := `{"op":"verify","workload":"pq-solo","options":{"verify_drops":1}}`

	query := func(t *testing.T) (string, []byte) {
		_, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir})
		resp, body := postJSON(t, ts.URL+"/v1/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cache"), body
	}

	cache1, body1 := query(t)
	if cache1 != "miss" || execs.Load() != 1 {
		t.Fatalf("first query: X-Cache %q, %d executions, want miss, 1", cache1, execs.Load())
	}
	// "Restart": a fresh Server with an empty RAM cache, same directory.
	cache2, body2 := query(t)
	if cache2 != "hit" {
		t.Fatalf("post-restart query X-Cache = %q, want hit (served from disk)", cache2)
	}
	if execs.Load() != 1 {
		t.Fatalf("post-restart query re-ran the engine (%d executions)", execs.Load())
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("disk-served body differs:\nfresh: %s\ndisk:  %s", body1, body2)
	}

	// A torn entry must degrade to a recompute, never a wrong answer.
	ents, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache dir entries = %v (%v), want exactly one", ents, err)
	}
	if err := os.Truncate(ents[0], 10); err != nil {
		t.Fatal(err)
	}
	cache3, body3 := query(t)
	if cache3 != "miss" || execs.Load() != 2 {
		t.Fatalf("corrupted-entry query: X-Cache %q, %d executions, want miss, 2", cache3, execs.Load())
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("recomputed body differs from the original")
	}
}
