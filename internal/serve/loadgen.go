package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes a load run against a running daemon.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8047".
	BaseURL string
	// Requests is the total query count; Concurrency the parallel
	// client goroutines issuing them.
	Requests    int
	Concurrency int
	// Mix is the request set, cycled round-robin; nil uses DefaultMix.
	Mix []Request
	// CancelProbes adds requests that are abandoned mid-flight after
	// CancelAfter, exercising end-to-end cancellation; each probe uses
	// unique options so it never dedups onto a real request.
	CancelProbes int
	CancelAfter  time.Duration
	// Timeout bounds each request (0 = 120s).
	Timeout time.Duration
}

// LoadReport is the harness's measurement — the numbers BENCH_serve.json
// tracks across PRs.
type LoadReport struct {
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Concurrency int     `json:"concurrency"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	ReqsPerSec  float64 `json:"reqs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`

	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	CacheDedups  int     `json:"cache_dedups"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	CancelProbes int `json:"cancel_probes,omitempty"`
	// CancelClientMs: client-observed time from cancel() to the request
	// returning (p50). CancelServerMaxMs: server-measured worst case
	// from last-waiter-gone to the job's work actually stopping, scraped
	// from /metrics — the end-to-end abort latency of a mid-BFS cancel.
	CancelClientP50Ms float64 `json:"cancel_client_p50_ms,omitempty"`
	CancelServerAvgMs float64 `json:"cancel_server_avg_ms,omitempty"`
	CancelServerMaxMs float64 `json:"cancel_server_max_ms,omitempty"`
	ServerCancels     int     `json:"server_cancels,omitempty"`
}

// DefaultMix is the mixed workload the ISSUE names: Mesh, FLC,
// Ethernet and PQ variants across synthesize, sweep and bounded verify
// ops. Verify bounds are kept small enough that a single request stays
// interactive; distinct option sets create distinct cache keys, so the
// mix exercises hits, misses and dedup together.
func DefaultMix() []Request {
	return []Request{
		{Op: OpSynthesize, Workload: "pq"},
		{Op: OpSynthesize, Workload: "mesh-3", Options: Options{Protocol: "half"}},
		{Op: OpSynthesize, Workload: "flc", Options: Options{ForceWidth: 8}},
		{Op: OpSynthesize, Workload: "ethernet-2", Options: Options{Robust: true}},
		{Op: OpSweep, Workload: "pq", Options: Options{IncludeRobust: true}},
		{Op: OpSweep, Workload: "flc"},
		{Op: OpSweep, Workload: "mesh-4"},
		{Op: OpVerify, Workload: "pq-solo", Options: Options{VerifyStates: 20000}},
		{Op: OpVerify, Workload: "pq", Options: Options{VerifyStates: 10000}},
		{Op: OpSynthesize, Workload: "pq", Options: Options{Robust: true, Parity: true}},
	}
}

// RunLoad fires cfg.Requests mixed queries at the daemon from
// cfg.Concurrency workers, plus cancel probes, and aggregates
// latencies, cache dispositions and cancellation measurements.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.CancelAfter <= 0 {
		cfg.CancelAfter = 30 * time.Millisecond
	}
	bodies := make([][]byte, len(cfg.Mix))
	for i := range cfg.Mix {
		b, err := json.Marshal(&cfg.Mix[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: cfg.Timeout}
	rep := &LoadReport{Requests: cfg.Requests, Concurrency: cfg.Concurrency}
	lat := make([]time.Duration, cfg.Requests)
	status := make([]string, cfg.Requests)
	errs := make([]bool, cfg.Requests)

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				st, err := postQuery(ctx, client, cfg.BaseURL, bodies[i%len(bodies)])
				lat[i] = time.Since(t0)
				status[i] = st
				errs[i] = err != nil
			}
		}()
	}

	// Cancel probes run alongside the load: each issues a uniquely-keyed
	// expensive verify, abandons it after CancelAfter, and records how
	// long the abandoned request took to return client-side.
	cancelLat := make([]time.Duration, cfg.CancelProbes)
	var cwg sync.WaitGroup
	for p := 0; p < cfg.CancelProbes; p++ {
		cwg.Add(1)
		go func(p int) {
			defer cwg.Done()
			probe := Request{
				Op:       OpVerify,
				Workload: "pq",
				// Unique state bound per probe: never a cache hit, never
				// deduped onto a real request or another probe.
				Options: Options{VerifyStates: 2_000_000 + p, VerifyDrops: 1},
			}
			b, _ := json.Marshal(&probe)
			pctx, cancel := context.WithCancel(ctx)
			timer := time.AfterFunc(cfg.CancelAfter, cancel)
			t0 := time.Now()
			postQuery(pctx, client, cfg.BaseURL, b) //nolint:errcheck // abandonment is the point
			cancelLat[p] = time.Since(t0)
			timer.Stop()
			cancel()
		}(p)
	}
	wg.Wait()
	cwg.Wait()
	rep.ElapsedSec = time.Since(start).Seconds()

	for i := range lat {
		if errs[i] {
			rep.Errors++
		}
		switch status[i] {
		case "hit":
			rep.CacheHits++
		case "miss":
			rep.CacheMisses++
		case "dedup":
			rep.CacheDedups++
		}
	}
	if rep.ElapsedSec > 0 {
		rep.ReqsPerSec = float64(cfg.Requests) / rep.ElapsedSec
	}
	if n := rep.CacheHits + rep.CacheMisses + rep.CacheDedups; n > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(n)
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rep.P50Ms = ms(percentile(sorted, 50))
	rep.P99Ms = ms(percentile(sorted, 99))
	if len(sorted) > 0 {
		rep.MaxMs = ms(sorted[len(sorted)-1])
	}

	if cfg.CancelProbes > 0 {
		rep.CancelProbes = cfg.CancelProbes
		// The probe's client latency includes CancelAfter itself; report
		// the abort portion.
		for i := range cancelLat {
			if cancelLat[i] > cfg.CancelAfter {
				cancelLat[i] -= cfg.CancelAfter
			} else {
				cancelLat[i] = 0
			}
		}
		sort.Slice(cancelLat, func(i, j int) bool { return cancelLat[i] < cancelLat[j] })
		rep.CancelClientP50Ms = ms(percentile(cancelLat, 50))
	}

	// Server-side cancel latency: the authoritative "work actually
	// stopped" measurement.
	if m, err := scrapeMetrics(ctx, client, cfg.BaseURL); err == nil {
		if n := m["ifsynd_jobs_canceled_total"]; n > 0 {
			rep.ServerCancels = int(n)
			if sum := m["ifsynd_cancel_latency_ns_total"]; sum > 0 {
				rep.CancelServerAvgMs = float64(sum) / float64(n) / 1e6
			}
			rep.CancelServerMaxMs = float64(m["ifsynd_cancel_latency_ns_max"]) / 1e6
		}
	}
	return rep, nil
}

// postQuery issues one synchronous query, returning the X-Cache
// disposition.
func postQuery(ctx context.Context, client *http.Client, baseURL string, body []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var sink [4096]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Cache"), nil
}

// scrapeMetrics fetches and parses the daemon's text metrics.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			out[name] = n
		}
	}
	return out, sc.Err()
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)-1)*p + 50
	return sorted[i/100]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
