package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: completed response
// bodies keyed by request Key, bounded by an LRU policy on entry count
// and total body bytes, optionally backed by a persistent disk tier
// (diskCache). A RAM miss falls through to disk and promotes the body
// back into the LRU, so repeat queries survive both eviction and
// daemon restarts. Bodies are immutable once inserted — readers get
// the stored slice, never a copy, and must not mutate it.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	byKey      map[Key]*list.Element
	bytes      int64
	disk       *diskCache // nil when no CacheDir is configured

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  Key
	body []byte
}

func newResultCache(maxEntries int, maxBytes int64, disk *diskCache) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      make(map[Key]*list.Element),
		disk:       disk,
	}
}

// get returns the cached body for the key, refreshing its recency. On
// a RAM miss it consults the disk tier, promoting a hit into the LRU.
func (c *resultCache) get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).body, true
	}
	c.misses++
	c.mu.Unlock()
	if c.disk != nil {
		if body, ok := c.disk.get(k); ok {
			c.insert(k, body)
			return body, true
		}
	}
	return nil, false
}

// put inserts a completed body, writing through to the disk tier. A
// body larger than the RAM byte bound skips the LRU (it would evict
// everything for one entry) but still persists.
func (c *resultCache) put(k Key, body []byte) {
	if int64(len(body)) <= c.maxBytes {
		c.insert(k, body)
	}
	if c.disk != nil {
		c.disk.put(k, body)
	}
}

// insert adds a body to the RAM tier only, evicting least-recently-
// used entries past either bound.
func (c *resultCache) insert(k Key, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		// Idempotent by construction: the body is a pure function of the
		// key, so a racing duplicate insert carries identical bytes.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: k, body: body})
	c.byKey[k] = el
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		last := c.ll.Back()
		if last == nil {
			break
		}
		ent := last.Value.(*cacheEntry)
		c.ll.Remove(last)
		delete(c.byKey, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *resultCache) stats() (entries int, bytes, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.hits, c.misses, c.evictions
}
