package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/busgen"
	"repro/internal/core"
	"repro/internal/flc"
	"repro/internal/hdl"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// Ops accepted by the daemon.
const (
	OpSynthesize = "synthesize"
	OpVerify     = "verify"
	OpRepair     = "repair"
	OpSweep      = "sweep"
)

// Options is the request-level view of core.Options: the scalar knobs a
// client may set, in one fixed JSON shape. Workers is the only field
// excluded from the cache key — the engine's results are
// worker-invariant, so two requests differing only in Workers must
// share one cache entry.
type Options struct {
	// Protocol selects the bus protocol: "" or "full" | "half".
	Protocol string `json:"protocol,omitempty"`
	// ForceWidth skips bus generation and forces every bus to this
	// width (0 = run bus generation).
	ForceWidth int  `json:"force_width,omitempty"`
	Arbitrate  bool `json:"arbitrate,omitempty"`
	Robust     bool `json:"robust,omitempty"`
	Parity     bool `json:"parity,omitempty"`
	// TimeoutClocks and MaxRetries tune hardened protocols (0 =
	// protogen defaults).
	TimeoutClocks int64 `json:"timeout_clocks,omitempty"`
	MaxRetries    int   `json:"max_retries,omitempty"`
	// Verify bounds (ops verify and repair always verify; synthesize
	// verifies when Verify is set).
	Verify       bool `json:"verify,omitempty"`
	VerifyDepth  int  `json:"verify_depth,omitempty"`
	VerifyDrops  int  `json:"verify_drops,omitempty"`
	VerifyStates int  `json:"verify_states,omitempty"`
	// VerifyMemBudgetMB bounds the checker's resident state memory in
	// MiB; past it, sealed BFS layers spill to disk. Verdicts are
	// byte-identical at any budget, so — like Workers — it is excluded
	// from the cache key.
	VerifyMemBudgetMB int `json:"verify_mem_budget_mb,omitempty"`
	// VerifyLossy runs the checker's hash-compaction (bitstate) mode.
	// Result-affecting, hence part of the cache key.
	VerifyLossy bool `json:"verify_lossy,omitempty"`
	// Repair bounds (op repair).
	RepairBudget int `json:"repair_budget,omitempty"`
	RepairTiers  int `json:"repair_tiers,omitempty"`
	// Sweep bounds (op sweep).
	MinWidth      int  `json:"min_width,omitempty"`
	MaxWidth      int  `json:"max_width,omitempty"`
	IncludeRobust bool `json:"include_robust,omitempty"`
	// Workers bounds each stage's goroutines (0 = GOMAXPROCS). Results
	// are byte-identical at any value; excluded from the cache key.
	Workers int `json:"workers,omitempty"`
}

// protocol resolves the Protocol name.
func (o Options) protocol() (spec.Protocol, error) {
	switch o.Protocol {
	case "", "full":
		return spec.FullHandshake, nil
	case "half":
		return spec.HalfHandshake, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want full | half)", o.Protocol)
	}
}

// coreOptions lowers the request options for one op. Verify/repair ops
// force their flag so the op alone fixes what runs.
func (o Options) coreOptions(op string) (core.Options, error) {
	p, err := o.protocol()
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		Bus:           busgen.Config{Protocol: p},
		ForceWidth:    o.ForceWidth,
		Arbitrate:     o.Arbitrate,
		Robust:        o.Robust,
		Parity:        o.Parity,
		TimeoutClocks: o.TimeoutClocks,
		MaxRetries:    o.MaxRetries,
		Workers:       o.Workers,
		Verify:        o.Verify,
		VerifyDepth:   o.VerifyDepth,
		VerifyDrops:   o.VerifyDrops,
		VerifyStates:  o.VerifyStates,
		RepairBudget:  o.RepairBudget,
		RepairTiers:   o.RepairTiers,
	}
	opts.VerifyMemBudget = int64(o.VerifyMemBudgetMB) << 20
	opts.VerifyLossy = o.VerifyLossy
	switch op {
	case OpVerify:
		opts.Verify = true
	case OpRepair:
		opts.Repair = true
	}
	return opts, nil
}

// canonical renders the options for hashing: Workers and the memory
// budget zeroed (results are worker- and budget-invariant), fixed
// field order via the struct encoding.
func (o Options) canonical() []byte {
	o.Workers = 0
	o.VerifyMemBudgetMB = 0
	b, err := json.Marshal(o)
	if err != nil {
		// Options is a closed struct of scalars; Marshal cannot fail.
		panic("serve: canonical options: " + err.Error())
	}
	return b
}

// Request is one query: a spec (inline text or named workload) plus an
// op and options.
type Request struct {
	Op string `json:"op"`
	// Workload names a built-in system: pq | pq-solo | mesh[-N] |
	// flc | ethernet[-N] | answering[-N].
	Workload string `json:"workload,omitempty"`
	// Spec is inline .sys source; exactly one of Workload and Spec
	// must be set.
	Spec    string  `json:"spec,omitempty"`
	Options Options `json:"options"`
}

func (r *Request) validate() error {
	switch r.Op {
	case OpSynthesize, OpVerify, OpRepair, OpSweep:
	default:
		return fmt.Errorf("unknown op %q (want synthesize | verify | repair | sweep)", r.Op)
	}
	if (r.Workload == "") == (r.Spec == "") {
		return fmt.Errorf("exactly one of workload and spec must be set")
	}
	if _, err := r.Options.protocol(); err != nil {
		return err
	}
	return nil
}

// resolve builds a fresh system for the request. Every call returns a
// newly constructed (or newly parsed) system: synthesis mutates its
// input, so resolved systems are single-use.
func (r *Request) resolve() (sys *spec.System, err error) {
	if r.Spec != "" {
		sys, err = hdl.Parse(r.Spec)
		if err != nil {
			return nil, fmt.Errorf("parse spec: %w", err)
		}
		return sys, nil
	}
	// Workload constructors panic on out-of-range sizes; surface those
	// as request errors, not daemon crashes.
	defer func() {
		if p := recover(); p != nil {
			sys, err = nil, fmt.Errorf("workload %q: %v", r.Workload, p)
		}
	}()
	name, n := splitWorkload(r.Workload)
	switch name {
	case "pq":
		sys, _ = workloads.PQ()
	case "pq-solo", "pqsolo":
		sys, _ = workloads.PQSolo()
	case "mesh":
		sys = workloads.Mesh(defaultN(n, 3))
	case "flc":
		sys = flc.New(flc.DefaultConfig()).Sys
	case "ethernet":
		sys = workloads.Ethernet(defaultN(n, 2))
	case "answering":
		sys = workloads.AnsweringMachine(defaultN(n, 2))
	default:
		return nil, fmt.Errorf("unknown workload %q (want pq | pq-solo | mesh[-N] | flc | ethernet[-N] | answering[-N])", r.Workload)
	}
	return sys, nil
}

// splitWorkload parses an optional -N size suffix: "mesh-4" → ("mesh", 4).
func splitWorkload(w string) (string, int) {
	if i := strings.LastIndexByte(w, '-'); i > 0 {
		if n, err := strconv.Atoi(w[i+1:]); err == nil {
			return w[:i], n
		}
	}
	return w, 0
}

func defaultN(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

// Key is the content address of a request: sha256 over a framed
// encoding of the canonical spec digest, the op, and the canonical
// options. Requests that resolve to hash-identical systems with the
// same op and options share one key — and therefore one cached result
// and one in-flight job.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// key computes the request's content address plus the spec's own
// digest. It resolves a throwaway system: the hash must cover what the
// request means, not how it was spelled (workload name vs identical
// inline text).
func (r *Request) key() (Key, spec.Digest, error) {
	sys, err := r.resolve()
	if err != nil {
		return Key{}, spec.Digest{}, err
	}
	sh := spec.Hash(sys)
	h := sha256.New()
	// v2: verify bodies gained the reachable-set fingerprint, and keys
	// now address a persistent store — the frame must change whenever
	// body shapes do, so a daemon upgrade can never serve a stale shape.
	h.Write([]byte("ifsynd/v2\x00"))
	h.Write(sh[:])
	h.Write([]byte{0})
	h.Write([]byte(r.Op))
	h.Write([]byte{0})
	h.Write(r.Options.canonical())
	var k Key
	h.Sum(k[:0])
	return k, sh, nil
}
