// Package serve implements synthesis-as-a-service: a long-running
// HTTP/JSON daemon (cmd/ifsynd) that accepts a specification — inline
// .sys text or a named workload — plus synthesis options, runs
// synthesize / sweep / verify / repair as queued jobs on a bounded
// worker pool, streams job progress, and caches completed results in a
// content-addressed store keyed by the canonical hash of
// (spec, op, options).
//
// Determinism is the load-bearing property. The engine guarantees
// worker-invariant results (verdicts and reports byte-identical at any
// worker count), so the worker knob is excluded from the cache key and
// response bodies carry no timestamps or durations: a cached response
// is byte-for-byte the response a fresh run would have produced. See
// DESIGN.md §5i.
package serve

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/repair"
	"repro/internal/verify"
	"repro/internal/vhdlgen"
)

// VerifyJSON is the machine-readable model-checking verdict, shared by
// the daemon's responses and protocheck -json so CI smokes parse one
// shape. It is the deterministic subset of verify.Report: Elapsed is
// deliberately absent (responses must be byte-identical across runs).
type VerifyJSON struct {
	Clean            bool            `json:"clean"`
	Procs            int             `json:"procs"`
	States           int             `json:"states"`
	Transitions      int64           `json:"transitions"`
	Depth            int             `json:"depth"`
	Incomplete       bool            `json:"incomplete,omitempty"`
	IncompleteReason string          `json:"incomplete_reason,omitempty"`
	GoldenClocks     int64           `json:"golden_clocks"`
	// Fingerprint is the order-independent digest of the reachable set —
	// identical across worker counts and memory budgets, so it both
	// witnesses determinism and keys incremental re-verification.
	// Spill statistics are deliberately absent: they vary with the
	// budget, and the body must not.
	Fingerprint  string          `json:"fingerprint,omitempty"`
	Lossy        bool            `json:"lossy,omitempty"`
	OmissionProb float64         `json:"omission_probability,omitempty"`
	Violations   []ViolationJSON `json:"violations,omitempty"`
}

// ViolationJSON is one property violation, without the replayable
// counterexample (traces are streamed as job events, not cached).
type ViolationJSON struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// NewVerifyJSON projects a verify report onto its deterministic
// machine-readable form.
func NewVerifyJSON(r *verify.Report) *VerifyJSON {
	if r == nil {
		return nil
	}
	v := &VerifyJSON{
		Clean:            r.Clean(),
		Procs:            r.Procs,
		States:           r.States,
		Transitions:      r.Transitions,
		Depth:            r.Depth,
		Incomplete:       r.Incomplete,
		IncompleteReason: r.IncompleteReason,
		GoldenClocks:     r.GoldenClocks,
		Fingerprint:      r.Fingerprint,
		Lossy:            r.Lossy,
		OmissionProb:     r.OmissionProb,
	}
	for _, vio := range r.Violations {
		v.Violations = append(v.Violations, ViolationJSON{
			Kind:    vio.Kind.String(),
			Message: vio.Message,
		})
	}
	return v
}

// RepairJSON is the machine-readable CEGIS repair trace (same shape as
// repair.Result.TraceJSON, reused field for field).
type RepairJSON struct {
	Repaired         bool               `json:"repaired"`
	Exhaustive       bool               `json:"exhaustive"`
	ExhaustedGrammar bool               `json:"exhausted_grammar,omitempty"`
	FinalTier        int                `json:"final_tier"`
	Mutations        []string           `json:"mutations"`
	Iterations       []repair.Iteration `json:"iterations"`
}

// NewRepairJSON projects a repair result onto its machine-readable
// trace.
func NewRepairJSON(r *repair.Result) *RepairJSON {
	if r == nil {
		return nil
	}
	muts := make([]string, 0, len(r.Mutations))
	for _, m := range r.Mutations {
		muts = append(muts, m.String())
	}
	return &RepairJSON{
		Repaired:         r.Repaired,
		Exhaustive:       r.Exhaustive,
		ExhaustedGrammar: r.ExhaustedGrammar,
		FinalTier:        r.FinalTier,
		Mutations:        muts,
		Iterations:       r.Iterations,
	}
}

// BusJSON describes one synthesized bus.
type BusJSON struct {
	Name     string   `json:"name"`
	Width    int      `json:"width"`
	Protocol string   `json:"protocol"`
	Lines    int      `json:"lines"`
	Channels []string `json:"channels"`
}

// PointJSON is one design-space point of a sweep response.
type PointJSON struct {
	Width         int     `json:"width"`
	Protocol      string  `json:"protocol"`
	Robust        bool    `json:"robust,omitempty"`
	Parity        bool    `json:"parity,omitempty"`
	Pins          int     `json:"pins"`
	Feasible      bool    `json:"feasible"`
	WorstExec     int64   `json:"worst_exec"`
	InterfaceArea float64 `json:"interface_area"`
}

func newPointJSON(p explore.Point) PointJSON {
	return PointJSON{
		Width:         p.Width,
		Protocol:      p.Protocol.String(),
		Robust:        p.Robust,
		Parity:        p.Parity,
		Pins:          p.Pins,
		Feasible:      p.Feasible,
		WorstExec:     p.WorstExec,
		InterfaceArea: p.InterfaceArea,
	}
}

// ResultJSON is the body of a completed query: everything in it is a
// pure function of (spec, op, options), so the encoded bytes are safe
// to cache and replay verbatim.
type ResultJSON struct {
	Op       string `json:"op"`
	SpecHash string `json:"spec_hash"`
	Key      string `json:"key"`
	System   string `json:"system"`

	// Synthesize / verify / repair results.
	Buses  []BusJSON   `json:"buses,omitempty"`
	Verify *VerifyJSON `json:"verify,omitempty"`
	Repair *RepairJSON `json:"repair,omitempty"`
	// VHDLSHA256 digests the refined system's emitted VHDL — proof of
	// byte-identical refinement without shipping the full text.
	VHDLSHA256 string `json:"vhdl_sha256,omitempty"`
	VHDLBytes  int    `json:"vhdl_bytes,omitempty"`

	// Sweep results.
	Points []PointJSON `json:"points,omitempty"`
	Pareto []PointJSON `json:"pareto,omitempty"`
}

func busesJSON(rep *core.Report) []BusJSON {
	var out []BusJSON
	for _, br := range rep.Buses {
		b := BusJSON{
			Name:     br.Bus.Name,
			Width:    br.Bus.Width,
			Protocol: br.Bus.Protocol.String(),
			Lines:    br.Bus.TotalLines(),
		}
		for _, c := range br.Bus.Channels {
			b.Channels = append(b.Channels, c.Name)
		}
		out = append(out, b)
	}
	return out
}

func vhdlDigest(res *ResultJSON, sysText string) {
	sum := sha256.Sum256([]byte(sysText))
	res.VHDLSHA256 = hex.EncodeToString(sum[:])
	res.VHDLBytes = len(sysText)
}

var emitVHDL = vhdlgen.Emit
