package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/spec"
)

// Event is one job progress record, streamed to watchers over SSE and
// kept in the job's replay buffer so late subscribers see the full
// history. Events are observation only — they never enter the cached
// response body, which must stay a pure function of the request.
type Event struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"` // queued | started | progress | done | canceled | error
	Msg    string `json:"msg,omitempty"`
	States int    `json:"states,omitempty"`
	Depth  int    `json:"depth,omitempty"`
}

// job is one queued/running/completed unit of work. Identical
// concurrent requests share a single job (in-flight dedup): each waiter
// holds a reference, and the job's context is canceled only when every
// waiter has gone — one impatient client must not abort a computation
// another client is still waiting for.
type job struct {
	id       string
	key      Key
	specHash spec.Digest
	req      *Request

	ctx    context.Context
	cancel context.CancelFunc

	// done closes when run() finishes; body/err are immutable after.
	done chan struct{}
	body []byte
	err  error

	mu         sync.Mutex
	refs       int
	canceledAt time.Time // when refs hit zero (cancel-latency anchor)
	events     []Event
	notify     chan struct{} // closed and replaced on each publish
	// maxEvents bounds the replay buffer; past it, publishes are
	// dropped (progress is best-effort, results are not).
	maxEvents int
}

func newJob(id string, key Key, req *Request, parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{
		id: id, key: key, req: req,
		ctx: ctx, cancel: cancel,
		done:      make(chan struct{}),
		refs:      1,
		notify:    make(chan struct{}),
		maxEvents: 8192,
	}
}

// publish appends an event and wakes every watcher.
func (j *job) publish(kind, msg string, states, depth int) {
	j.mu.Lock()
	if len(j.events) >= j.maxEvents {
		j.mu.Unlock()
		return
	}
	j.events = append(j.events, Event{
		Seq: len(j.events), Kind: kind, Msg: msg, States: states, Depth: depth,
	})
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// watch returns the events at or past `from` plus the channel that
// closes on the next publish — the condition-variable idiom that lets
// an SSE handler stream without the job tracking subscribers.
func (j *job) watch(from int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.notify
}

// ref adds a waiter. It fails (returns false) once the job has been
// canceled — a new arrival must start a fresh job rather than join a
// computation that is already unwinding.
func (j *job) ref() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.refs <= 0 {
		return false
	}
	j.refs++
	return true
}

// unref drops a waiter; the last one out cancels the work and stamps
// the cancel-latency anchor. Reports whether this call canceled.
func (j *job) unref() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.refs--
	if j.refs > 0 {
		return false
	}
	j.canceledAt = time.Now()
	j.cancel()
	return true
}

// cancelLatency reports the time from the last waiter leaving to the
// job's run actually returning; zero if the job was never canceled.
func (j *job) cancelLatency(endedAt time.Time) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceledAt.IsZero() {
		return 0
	}
	return endedAt.Sub(j.canceledAt)
}

// phase reports a live job's stage from its event log: "running" once
// a started event was published, "queued" before.
func (j *job) phase() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, ev := range j.events {
		if ev.Kind == "started" {
			return "running"
		}
	}
	return "queued"
}

// progressHook returns a verify.Config.Progress-shaped callback that
// publishes throttled progress events: one per ~32 BFS layers or 20k
// new states, so a million-state search emits dozens of events, not
// thousands.
func (j *job) progressHook() func(states, depth int) {
	var lastStates, lastDepth int
	return func(states, depth int) {
		if depth-lastDepth < 32 && states-lastStates < 20_000 {
			return
		}
		lastStates, lastDepth = states, depth
		j.publish("progress", "", states, depth)
	}
}
