// Package repro is a reproduction of S. Narayan and D. D. Gajski,
// "Protocol Generation for Communication Channels" (DAC 1994): an
// interface-synthesis flow that implements the abstract communication
// channels produced by system-level partitioning as shared buses, by
// selecting a minimum-cost bus width (bus generation) and synthesizing
// the wire-level data-transfer mechanism plus a simulatable refined
// specification (protocol generation).
//
// The library layout:
//
//	internal/spec        specification IR (behaviors, variables, channels)
//	internal/hdl         textual front end (lexer, parser, elaborator)
//	internal/bits        bit-vector values
//	internal/estimate    performance and channel-rate estimation
//	internal/busgen      bus generation (Section 3)
//	internal/protogen    protocol generation (Section 4, the contribution)
//	internal/partition   SpecSyn-style partitioning and channel grouping
//	internal/core        one-call Synthesize facade
//	internal/sim         discrete-event simulator for (refined) specs
//	internal/vhdlgen     VHDL-flavored emitter
//	internal/flc         the paper's fuzzy-logic-controller case study
//	internal/workloads   answering machine, Ethernet coprocessor, Fig. 3
//	internal/experiments regeneration of Figs. 2, 7 and 8
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go
// regenerate every figure of the paper's evaluation.
package repro
