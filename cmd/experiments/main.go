// Command experiments regenerates the evaluation artifacts of Narayan &
// Gajski (DAC'94): Fig. 2 (channel merging), Fig. 7 (FLC performance vs
// bus width, with an optional simulator cross-check) and Fig. 8 (three
// constrained bus designs).
//
// Usage:
//
//	experiments -fig 2        print Fig. 2
//	experiments -fig 7        print Fig. 7 (estimator sweep)
//	experiments -fig 7 -sim   additionally run the simulator cross-check
//	experiments -fig 8        print Fig. 8
//	experiments -all          print everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 2, 7 or 8")
	all := flag.Bool("all", false, "regenerate every figure")
	simCheck := flag.Bool("sim", false, "with -fig 7: run the cycle-counting simulator cross-check")
	flag.Parse()

	if !*all && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	want := func(f string) bool { return *all || *fig == f }

	if want("2") {
		fmt.Println(experiments.Fig2())
	}
	if want("7") {
		fmt.Println(experiments.Fig7())
		if *simCheck || *all {
			points, err := experiments.Fig7SimCheck([]int{1, 2, 4, 8, 16, 23, 24})
			if err != nil {
				fmt.Fprintln(os.Stderr, "simulator cross-check failed:", err)
				os.Exit(1)
			}
			var b strings.Builder
			b.WriteString("Fig. 7 cross-check — simulated FLC completion time (cost model on)\n\n")
			fmt.Fprintf(&b, "  %5s  %12s\n", "width", "clocks")
			for _, p := range points {
				fmt.Fprintf(&b, "  %5d  %12d\n", p.Width, p.Clocks)
			}
			fmt.Println(b.String())
		}
	}
	if want("8") {
		r, err := experiments.Fig8()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig 8 failed:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
}
