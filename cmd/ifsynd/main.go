// Command ifsynd is the interface-synthesis daemon: a long-running
// HTTP/JSON service that runs synthesize / verify / repair / sweep
// requests on a bounded worker pool, streams job progress, and replays
// completed results from a content-addressed cache.
//
// Endpoints (see internal/serve and DESIGN.md §5i):
//
//	POST   /v1/query            run (or replay) a request synchronously
//	POST   /v1/jobs             submit asynchronously → job id
//	GET    /v1/jobs/{id}        job status + result when done
//	GET    /v1/jobs/{id}/events SSE progress stream
//	DELETE /v1/jobs/{id}        cancel (drops the submitter's reference)
//	GET    /healthz, /metrics   liveness and text metrics
//
// Usage:
//
//	go run ./cmd/ifsynd [-addr :8047] [-jobs N] [-queue N]
//	                    [-cache-entries N] [-cache-mb N] [-cache-dir D]
//
//	-addr A           listen address (default 127.0.0.1:8047)
//	-jobs N           concurrent jobs (0 = all CPUs)
//	-queue N          queued-job bound before 503 (default 256)
//	-cache-entries N  result-cache entry bound (default 1024)
//	-cache-mb N       result-cache byte bound in MiB (default 64)
//	-cache-dir D      persistent result store; repeat queries are
//	                  answered from it across daemon restarts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8047", "listen address")
	jobs := flag.Int("jobs", 0, "concurrent jobs (0 = all CPUs)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 256)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache entry bound (0 = 1024)")
	cacheMB := flag.Int64("cache-mb", 0, "result cache byte bound in MiB (0 = 64)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = RAM cache only)")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:      *jobs,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheMB << 20,
		CacheDir:     *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ifsynd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ifsynd: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests finish
		// (bounded), then cancel everything still running via srv.Close.
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "ifsynd: shutdown: %v\n", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ifsynd: %v\n", err)
			os.Exit(1)
		}
	}
}
