// Command protocheck model-checks a generated bus protocol: it refines
// a specification (the paper's PQ example by default, or a spec file),
// then explores every process interleaving — optionally under a
// wire-fault budget — for deadlocks, driver conflicts, bounded-response
// violations and end-to-end delivery faults. Violations print minimal
// counterexample traces, each replayed through the simulator.
//
// Usage:
//
//	protocheck [flags] [spec.sys]
//
//	-protocol P   full | half (default full handshake)
//	-workload W   built-in workload when no spec file is given:
//	              pq (default) | pq-solo (PQ without the staggered Q
//	              accessor — small enough for exhaustive verdicts on
//	              hardened variants)
//	-robust       harden the protocol (bounded waits, retransmission)
//	-parity       with -robust: PAR/NACK parity lines
//	-timeout N    with -robust: handshake timeout in clocks
//	-retries N    with -robust: retransmission budget per transaction
//	-arbitrate    add REQ/GRANT bus arbitration
//	-width N      force the bus width (0 = run bus generation)
//	-drops N      wire-fault budget: strobe transitions that may be
//	              dropped along any one explored path (default 0)
//	-depth N      search depth bound (0 = states bound only)
//	-states N     stored-states bound (0 = checker default)
//	-mem-budget N resident state-memory budget in MiB: past it, sealed
//	              BFS layers spill to a disk store and the search is
//	              disk-bound instead of RAM-bound (0 = all in RAM;
//	              verdict and state count identical either way)
//	-spill DIR    spill scratch directory (default system temp)
//	-bloom        lossy hash-compaction dedup (SPIN bitstate style):
//	              hash hits are accepted without byte confirmation and
//	              the report carries the omission probability
//	-j N          exploration workers (0 = all CPUs; verdict identical)
//	-repair       on violations, run the counterexample-guided repair
//	              loop (internal/repair): classify each counterexample,
//	              re-generate with targeted hardening knobs, re-verify;
//	              prints the iteration log, and -expect judges the final
//	              (post-repair) verdict
//	-repair-budget N  bound repair iterations (0 = grammar size + 1)
//	-repair-tiers N   cap repair escalation (0 = full ladder): 1 keeps
//	              the local tier-1 knobs, 2 adds the arbitration
//	              mutations, 3 allows protocol reselection — each
//	              escalation is priced through the estimator in the
//	              printed trace
//	-json         machine-readable output: one JSON document with the
//	              spec hash, the verdict (internal/serve's VerifyJSON
//	              shape — the same one the ifsynd daemon returns) and,
//	              with -repair, the repair trace; replaces the text
//	              report, exit codes unchanged
//	-cex FILE     write the first counterexample's replay as VCD
//	-expect E     none | no-deadlock | deadlock | any: exit 0 iff the
//	              verdict matches (default none — a clean report;
//	              no-deadlock tolerates other findings, e.g. the robust
//	              protocol's residual lost-ack corruption window)
//	-cpuprofile F write a CPU profile of the check to F (go tool pprof)
//	-memprofile F write an allocation profile taken after the check to F
//
// Exit status: 0 when the verdict matches -expect, 1 when it does not,
// 2 on usage or synthesis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/hdl"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonVerdict is protocheck -json's output document. Verify and Repair
// reuse internal/serve's response shapes, so CI and scripts parse one
// vocabulary whether the verdict came from the CLI or the daemon.
type jsonVerdict struct {
	Workload string `json:"workload,omitempty"`
	SpecFile string `json:"spec_file,omitempty"`
	SpecHash string `json:"spec_hash"`
	Expect   string `json:"expect"`
	// Match reports whether the verdict satisfied -expect (the exit
	// status says the same thing; this keeps parsed output self-contained).
	Match  bool              `json:"match"`
	Verify *serve.VerifyJSON `json:"verify"`
	Repair *serve.RepairJSON `json:"repair,omitempty"`
	Replay string            `json:"replay,omitempty"`
}

// run is main, testably: flags from args, output on the writers, exit
// status returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("protocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	protoName := fs.String("protocol", "full", "protocol: full | half")
	workload := fs.String("workload", "pq", "built-in workload when no spec file is given: pq | pq-solo")
	robust := fs.Bool("robust", false, "harden the protocol: bounded waits, retransmission, watchdogs")
	parity := fs.Bool("parity", false, "with -robust: add PAR/NACK parity lines")
	timeoutClocks := fs.Int64("timeout", 0, "with -robust: handshake timeout in clocks (0 = default)")
	retries := fs.Int("retries", 0, "with -robust: retransmission budget (0 = default)")
	arbitrate := fs.Bool("arbitrate", false, "add REQ/GRANT bus arbitration")
	width := fs.Int("width", 0, "force bus width (0 = run bus generation)")
	drops := fs.Int("drops", 0, "dropped-transition budget per explored path")
	depth := fs.Int("depth", 0, "search depth bound (0 = states bound only)")
	states := fs.Int("states", 0, "stored-states bound (0 = checker default)")
	memBudget := fs.Int64("mem-budget", 0, "resident state-memory budget in MiB; past it sealed BFS layers spill to disk (0 = all in RAM; verdict identical)")
	spillDir := fs.String("spill", "", "spill scratch directory (default system temp; only used with -mem-budget)")
	bloomMode := fs.Bool("bloom", false, "lossy hash-compaction dedup: skip byte confirmation of hash hits and report the omission probability")
	workers := fs.Int("j", 0, "exploration workers (0 = all CPUs, 1 = serial; verdict identical)")
	repairFlag := fs.Bool("repair", false, "on violations, run the counterexample-guided repair loop")
	repairBudget := fs.Int("repair-budget", 0, "bound repair iterations (0 = grammar size + 1)")
	repairTiers := fs.Int("repair-tiers", 0, "cap repair escalation: 1 local knobs, 2 +arbitration, 3 +protocol reselection (0 = full ladder)")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON document instead of the text report")
	cexPath := fs.String("cex", "", "write the first counterexample's replay waveform to this VCD file")
	expect := fs.String("expect", "none", "expected verdict: none | no-deadlock | deadlock | any")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the check to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile taken after the check to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatal := func(err error) int {
		fmt.Fprintln(stderr, "protocheck:", err)
		return 2
	}

	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: protocheck [flags] [spec.sys]")
		fs.PrintDefaults()
		return 2
	}
	switch *expect {
	case "none", "no-deadlock", "deadlock", "any":
	default:
		fmt.Fprintf(stderr, "protocheck: unknown -expect %q (want none | no-deadlock | deadlock | any)\n", *expect)
		return 2
	}

	out := jsonVerdict{Expect: *expect}
	var sys *spec.System
	if fs.NArg() == 1 {
		parsed, err := hdl.ParseFile(fs.Arg(0))
		if err != nil {
			return fatal(err)
		}
		sys = parsed
		out.SpecFile = fs.Arg(0)
	} else {
		switch *workload {
		case "pq":
			sys, _ = workloads.PQ()
		case "pq-solo":
			sys, _ = workloads.PQSolo()
		default:
			fmt.Fprintf(stderr, "protocheck: unknown -workload %q (want pq | pq-solo)\n", *workload)
			return 2
		}
		out.Workload = *workload
	}
	out.SpecHash = spec.Hash(sys).String()

	opts := core.Options{
		ForceWidth:    *width,
		Arbitrate:     *arbitrate,
		Robust:        *robust,
		Parity:        *parity,
		TimeoutClocks: *timeoutClocks,
		MaxRetries:    *retries,
		Workers:       *workers,
	}
	switch *protoName {
	case "full":
		opts.Bus.Protocol = spec.FullHandshake
	case "half":
		opts.Bus.Protocol = spec.HalfHandshake
	default:
		fmt.Fprintf(stderr, "protocheck: unknown -protocol %q (want full | half)\n", *protoName)
		return 2
	}

	if *repairFlag {
		opts.Repair = true
		opts.RepairBudget = *repairBudget
		opts.RepairTiers = *repairTiers
		opts.VerifyDepth = *depth
		opts.VerifyStates = *states
		opts.VerifyDrops = *drops
		opts.VerifyMemBudget = *memBudget << 20
		opts.VerifySpillDir = *spillDir
		opts.VerifyLossy = *bloomMode
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	// With -repair, verification runs inside Synthesize (the repair loop
	// re-generates and re-checks per iteration); without it, the check
	// runs here on the refined system.
	rep, err := core.Synthesize(sys, opts)
	if err != nil {
		return fatal(err)
	}
	var vr *verify.Report
	if *repairFlag {
		vr = rep.Verify
		out.Repair = serve.NewRepairJSON(rep.Repair)
		if !*jsonOut {
			fmt.Fprint(stdout, rep.Repair.Format())
		}
	} else {
		var abortVars []string
		for _, br := range rep.Buses {
			abortVars = append(abortVars, br.Ref.AbortKeys()...)
		}
		vr, err = verify.Check(sys, verify.Config{
			MaxDepth:  *depth,
			MaxStates: *states,
			MaxDrops:  *drops,
			Workers:   *workers,
			MemBudget: *memBudget << 20,
			SpillDir:  *spillDir,
			Lossy:     *bloomMode,
			AbortVars: abortVars,
		})
		if err != nil {
			return fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fatal(err)
		}
		runtime.GC() // flush the allocation accounting before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fatal(err)
		}
		if err := f.Close(); err != nil {
			return fatal(err)
		}
	}
	out.Verify = serve.NewVerifyJSON(vr)
	if !*jsonOut {
		fmt.Fprint(stdout, vr.Format())
	}

	deadlocked := false
	for _, v := range vr.Violations {
		if v.Kind == verify.Deadlock {
			deadlocked = true
		}
	}
	if len(vr.Violations) > 0 {
		v := vr.Violations[0]
		if v.Cex != nil {
			if r, err := v.Cex.Replay(); err == nil {
				out.Replay = fmt.Sprint(r.Outcome)
				if !*jsonOut {
					fmt.Fprintf(stdout, "replay of [1]: %s\n", r.Outcome)
				}
			} else if !*jsonOut {
				fmt.Fprintf(stdout, "replay of [1] failed: %v\n", err)
			}
			if *cexPath != "" {
				f, err := os.Create(*cexPath)
				if err != nil {
					return fatal(err)
				}
				if err := v.Cex.WriteVCD(f); err != nil {
					f.Close()
					return fatal(err)
				}
				if err := f.Close(); err != nil {
					return fatal(err)
				}
				if !*jsonOut {
					fmt.Fprintf(stdout, "counterexample waveform written to %s\n", *cexPath)
				}
			}
		}
	}

	ok := false
	switch *expect {
	case "none":
		ok = vr.Clean()
	case "no-deadlock":
		ok = !deadlocked
	case "deadlock":
		ok = deadlocked
	case "any":
		ok = len(vr.Violations) > 0
	}
	out.Match = ok
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			return fatal(err)
		}
	}
	if !ok {
		if !*jsonOut {
			fmt.Fprintf(stdout, "verdict does not match -expect %s\n", *expect)
		}
		return 1
	}
	return 0
}
