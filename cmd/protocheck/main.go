// Command protocheck model-checks a generated bus protocol: it refines
// a specification (the paper's PQ example by default, or a spec file),
// then explores every process interleaving — optionally under a
// wire-fault budget — for deadlocks, driver conflicts, bounded-response
// violations and end-to-end delivery faults. Violations print minimal
// counterexample traces, each replayed through the simulator.
//
// Usage:
//
//	protocheck [flags] [spec.sys]
//
//	-protocol P   full | half (default full handshake)
//	-workload W   built-in workload when no spec file is given:
//	              pq (default) | pq-solo (PQ without the staggered Q
//	              accessor — small enough for exhaustive verdicts on
//	              hardened variants)
//	-robust       harden the protocol (bounded waits, retransmission)
//	-parity       with -robust: PAR/NACK parity lines
//	-timeout N    with -robust: handshake timeout in clocks
//	-retries N    with -robust: retransmission budget per transaction
//	-arbitrate    add REQ/GRANT bus arbitration
//	-width N      force the bus width (0 = run bus generation)
//	-drops N      wire-fault budget: strobe transitions that may be
//	              dropped along any one explored path (default 0)
//	-depth N      search depth bound (0 = states bound only)
//	-states N     stored-states bound (0 = checker default)
//	-j N          exploration workers (0 = all CPUs; verdict identical)
//	-repair       on violations, run the counterexample-guided repair
//	              loop (internal/repair): classify each counterexample,
//	              re-generate with targeted hardening knobs, re-verify;
//	              prints the iteration log, and -expect judges the final
//	              (post-repair) verdict
//	-repair-budget N  bound repair iterations (0 = grammar size + 1)
//	-repair-tiers N   cap repair escalation (0 = full ladder): 1 keeps
//	              the local tier-1 knobs, 2 adds the arbitration
//	              mutations, 3 allows protocol reselection — each
//	              escalation is priced through the estimator in the
//	              printed trace
//	-cex FILE     write the first counterexample's replay as VCD
//	-expect E     none | no-deadlock | deadlock | any: exit 0 iff the
//	              verdict matches (default none — a clean report;
//	              no-deadlock tolerates other findings, e.g. the robust
//	              protocol's residual lost-ack corruption window)
//	-cpuprofile F write a CPU profile of the check to F (go tool pprof)
//	-memprofile F write an allocation profile taken after the check to F
//
// Exit status: 0 when the verdict matches -expect, 1 when it does not,
// 2 on usage or synthesis errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/hdl"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func main() {
	protoName := flag.String("protocol", "full", "protocol: full | half")
	workload := flag.String("workload", "pq", "built-in workload when no spec file is given: pq | pq-solo")
	robust := flag.Bool("robust", false, "harden the protocol: bounded waits, retransmission, watchdogs")
	parity := flag.Bool("parity", false, "with -robust: add PAR/NACK parity lines")
	timeoutClocks := flag.Int64("timeout", 0, "with -robust: handshake timeout in clocks (0 = default)")
	retries := flag.Int("retries", 0, "with -robust: retransmission budget (0 = default)")
	arbitrate := flag.Bool("arbitrate", false, "add REQ/GRANT bus arbitration")
	width := flag.Int("width", 0, "force bus width (0 = run bus generation)")
	drops := flag.Int("drops", 0, "dropped-transition budget per explored path")
	depth := flag.Int("depth", 0, "search depth bound (0 = states bound only)")
	states := flag.Int("states", 0, "stored-states bound (0 = checker default)")
	workers := flag.Int("j", 0, "exploration workers (0 = all CPUs, 1 = serial; verdict identical)")
	repairFlag := flag.Bool("repair", false, "on violations, run the counterexample-guided repair loop")
	repairBudget := flag.Int("repair-budget", 0, "bound repair iterations (0 = grammar size + 1)")
	repairTiers := flag.Int("repair-tiers", 0, "cap repair escalation: 1 local knobs, 2 +arbitration, 3 +protocol reselection (0 = full ladder)")
	cexPath := flag.String("cex", "", "write the first counterexample's replay waveform to this VCD file")
	expect := flag.String("expect", "none", "expected verdict: none | no-deadlock | deadlock | any")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the check to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the check to this file")
	flag.Parse()

	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: protocheck [flags] [spec.sys]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch *expect {
	case "none", "no-deadlock", "deadlock", "any":
	default:
		fmt.Fprintf(os.Stderr, "protocheck: unknown -expect %q (want none | no-deadlock | deadlock | any)\n", *expect)
		os.Exit(2)
	}

	var sys *spec.System
	if flag.NArg() == 1 {
		parsed, err := hdl.ParseFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		sys = parsed
	} else {
		switch *workload {
		case "pq":
			sys, _ = workloads.PQ()
		case "pq-solo":
			sys, _ = workloads.PQSolo()
		default:
			fmt.Fprintf(os.Stderr, "protocheck: unknown -workload %q (want pq | pq-solo)\n", *workload)
			os.Exit(2)
		}
	}

	opts := core.Options{
		ForceWidth:    *width,
		Arbitrate:     *arbitrate,
		Robust:        *robust,
		Parity:        *parity,
		TimeoutClocks: *timeoutClocks,
		MaxRetries:    *retries,
		Workers:       *workers,
	}
	switch *protoName {
	case "full":
		opts.Bus.Protocol = spec.FullHandshake
	case "half":
		opts.Bus.Protocol = spec.HalfHandshake
	default:
		fmt.Fprintf(os.Stderr, "protocheck: unknown -protocol %q (want full | half)\n", *protoName)
		os.Exit(2)
	}

	if *repairFlag {
		opts.Repair = true
		opts.RepairBudget = *repairBudget
		opts.RepairTiers = *repairTiers
		opts.VerifyDepth = *depth
		opts.VerifyStates = *states
		opts.VerifyDrops = *drops
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		// fatal uses os.Exit, which skips defers — stop explicitly on
		// both outcomes so the profile always flushes.
		defer f.Close()
	}

	// With -repair, verification runs inside Synthesize (the repair loop
	// re-generates and re-checks per iteration); without it, the check
	// runs here on the refined system.
	rep, err := core.Synthesize(sys, opts)
	if err != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		fatal(err)
	}
	var vr *verify.Report
	if *repairFlag {
		vr = rep.Verify
		fmt.Print(rep.Repair.Format())
	} else {
		var abortVars []string
		for _, br := range rep.Buses {
			abortVars = append(abortVars, br.Ref.AbortKeys()...)
		}
		vr, err = verify.Check(sys, verify.Config{
			MaxDepth:  *depth,
			MaxStates: *states,
			MaxDrops:  *drops,
			Workers:   *workers,
			AbortVars: abortVars,
		})
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // flush the allocation accounting before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Print(vr.Format())

	deadlocked := false
	for _, v := range vr.Violations {
		if v.Kind == verify.Deadlock {
			deadlocked = true
		}
	}
	if len(vr.Violations) > 0 {
		v := vr.Violations[0]
		if v.Cex != nil {
			if r, err := v.Cex.Replay(); err == nil {
				fmt.Printf("replay of [1]: %s\n", r.Outcome)
			} else {
				fmt.Printf("replay of [1] failed: %v\n", err)
			}
			if *cexPath != "" {
				f, err := os.Create(*cexPath)
				if err != nil {
					fatal(err)
				}
				if err := v.Cex.WriteVCD(f); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
				fmt.Printf("counterexample waveform written to %s\n", *cexPath)
			}
		}
	}

	ok := false
	switch *expect {
	case "none":
		ok = vr.Clean()
	case "no-deadlock":
		ok = !deadlocked
	case "deadlock":
		ok = deadlocked
	case "any":
		ok = len(vr.Violations) > 0
	}
	if !ok {
		fmt.Printf("verdict does not match -expect %s\n", *expect)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protocheck:", err)
	os.Exit(2)
}
