package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden runs protocheck and compares its stdout to a golden file
// byte for byte — the -json surface is part of the machine interface
// (CI and the daemon's clients parse it), so its exact shape is pinned.
// Regenerate with: go test ./cmd/protocheck -run TestJSON -update
func checkGolden(t *testing.T, args []string, wantCode int, goldenName string) []byte {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != wantCode {
		t.Fatalf("run(%v) = %d, want %d\nstderr: %s", args, code, wantCode, errb.String())
	}
	golden := filepath.Join("testdata", goldenName)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, out.Bytes(), want)
	}
	return out.Bytes()
}

// TestJSONVerdictClean: exhaustive clean verdict on the ideal-wire
// PQSolo refinement.
func TestJSONVerdictClean(t *testing.T) {
	b := checkGolden(t, []string{"-workload", "pq-solo", "-json"}, 0, "pqsolo_clean.json")
	var v jsonVerdict
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !v.Match || v.Verify == nil || !v.Verify.Clean || v.Verify.States == 0 {
		t.Fatalf("unexpected verdict: %+v", v)
	}
	if v.SpecHash == "" {
		t.Fatal("spec hash missing")
	}
}

// TestJSONVerdictViolations: a 1-drop budget wedges the ideal-wire
// handshake; the document must carry the violations and the
// counterexample's replay outcome.
func TestJSONVerdictViolations(t *testing.T) {
	b := checkGolden(t, []string{"-workload", "pq-solo", "-drops", "1", "-expect", "any", "-json"}, 0, "pqsolo_drops.json")
	var v jsonVerdict
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Verify.Violations) == 0 {
		t.Fatalf("no violations in document: %+v", v)
	}
	if v.Replay == "" {
		t.Fatal("replay outcome missing")
	}
}

// TestJSONRepairTrace: the CEGIS loop's machine-readable trace — the
// same RepairJSON shape the daemon returns — pinned end to end on the
// known two-mutation PQSolo repair.
func TestJSONRepairTrace(t *testing.T) {
	b := checkGolden(t, []string{
		"-workload", "pq-solo", "-robust", "-timeout", "8", "-retries", "2",
		"-repair", "-drops", "1", "-json",
	}, 0, "pqsolo_repair.json")
	var v jsonVerdict
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.Repair == nil || !v.Repair.Repaired {
		t.Fatalf("repair trace missing or not repaired: %+v", v.Repair)
	}
	if len(v.Repair.Mutations) != 2 || len(v.Repair.Iterations) == 0 {
		t.Fatalf("unexpected trace: mutations=%v iterations=%d", v.Repair.Mutations, len(v.Repair.Iterations))
	}
	if v.Verify == nil || !v.Verify.Clean {
		t.Fatalf("post-repair verdict not clean: %+v", v.Verify)
	}
}

// TestExitCodes pins the CLI contract scripts rely on.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "pq-solo", "-drops", "1", "-json"}, &out, &errb); code != 1 {
		t.Fatalf("violations with -expect none: exit %d, want 1", code)
	}
	out.Reset()
	if code := run([]string{"-workload", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown workload: exit %d, want 2", code)
	}
	if code := run([]string{"-expect", "maybe"}, &out, &errb); code != 2 {
		t.Fatalf("bad -expect: exit %d, want 2", code)
	}
}
