// Command ifsyn runs the complete interface-synthesis flow on a textual
// specification: parse, derive channels, group them into a bus, select
// the bus width (bus generation), generate the transfer protocol
// (protocol generation) and emit the refined specification as VHDL-
// flavored text. With -run the refined system is also simulated and the
// final memory state printed.
//
// Usage:
//
//	ifsyn [flags] spec.sys
//
//	-autopartition N  re-partition the system into N modules by closeness
//	                before synthesis (discards the spec's module split)
//	-width N        force the bus width instead of running bus generation
//	-protocol P     full | half | fixed (default full handshake)
//	-grouping G     single | pairs | feasible (channel grouping policy)
//	-constraint C   designer constraint, repeatable; forms:
//	                  minwidth:VALUE:WEIGHT
//	                  maxwidth:VALUE:WEIGHT
//	                  minpeak:CHANNEL:VALUE:WEIGHT
//	                  maxpeak:CHANNEL:VALUE:WEIGHT
//	                  minave:CHANNEL:VALUE:WEIGHT
//	                  maxave:CHANNEL:VALUE:WEIGHT
//	-o FILE         write the refined VHDL to FILE (default stdout)
//	-j N            concurrent workers for estimation sweeps
//	                (0 = all CPUs, 1 = serial; results are identical)
//	-summary        print the synthesis summary (buses, IDs, wires)
//	-trace          print the bus-generation width trace
//	-arbitrate      add REQ/GRANT bus arbitration
//	-area           print gate-equivalent area estimates per module
//	-run            simulate the refined system and print final values
//	-vcd FILE       with -run: dump signal waveforms as a VCD file
//	-robust         harden the protocol: bounded waits, retransmission,
//	                watchdog variable processes (full/half handshake)
//	-parity         with -robust: PAR/NACK parity lines over DATA+ID
//	-timeout N      with -robust: clocks before a handshake wait expires
//	-retries N      with -robust: retransmission budget per transaction
//	-faults N       run a fault-injection campaign of N seeded runs per
//	                bus and print the outcome table
//	-fault-seed S   campaign seed (campaigns are reproducible per seed)
//	-verify         model-check the refined system: exhaustive
//	                interleaving search for deadlocks, driver conflicts,
//	                bounded response and end-to-end delivery; violations
//	                print minimal counterexample traces and exit 1
//	-verify-depth N bound the model checker's search depth (0 = states
//	                bound only)
//	-verify-drops N wire-fault budget: how many strobe transitions may
//	                be dropped along any explored path (0 = fault-free)
//	-repair         on violations, run the counterexample-guided repair
//	                loop on the parsed spec: classify each counterexample,
//	                re-generate the protocols with targeted hardening
//	                knobs — escalating through arbitration mutations up to
//	                protocol reselection, each escalation priced through
//	                the estimator — and re-verify until the properties
//	                hold or the grammar is exhausted; prints the iteration
//	                trace, emits the repaired refinement, and implies
//	                -verify
//	-repair-budget N  bound repair iterations (0 = grammar size + 1)
//	-repair-tiers N   cap repair escalation: 1 local knobs only, 2 adds
//	                arbitration mutations, 3 allows protocol reselection
//	                (0 = full ladder)
//	-expect E       judge the (post-repair) verdict instead of the plain
//	                exit-1-on-violation rule: none | no-deadlock |
//	                deadlock | any; exit 0 iff the verdict matches
//	-cex FILE       with -verify: dump the first counterexample's
//	                simulator replay as a VCD waveform to FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/busgen"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/fault"
	"repro/internal/hdl"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vcd"
	"repro/internal/verify"
	"repro/internal/vhdlgen"
)

type constraintFlags []busgen.Constraint

func (c *constraintFlags) String() string { return fmt.Sprintf("%v", []busgen.Constraint(*c)) }

func (c *constraintFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	kindName := strings.ToLower(parts[0])
	var kind busgen.ConstraintKind
	hasChannel := false
	switch kindName {
	case "minwidth":
		kind = busgen.MinBusWidth
	case "maxwidth":
		kind = busgen.MaxBusWidth
	case "minpeak":
		kind, hasChannel = busgen.MinPeakRate, true
	case "maxpeak":
		kind, hasChannel = busgen.MaxPeakRate, true
	case "minave":
		kind, hasChannel = busgen.MinAveRate, true
	case "maxave":
		kind, hasChannel = busgen.MaxAveRate, true
	default:
		return fmt.Errorf("unknown constraint kind %q", parts[0])
	}
	want := 3
	if hasChannel {
		want = 4
	}
	if len(parts) != want {
		return fmt.Errorf("constraint %q: want %d fields", s, want)
	}
	i := 1
	channel := ""
	if hasChannel {
		channel = parts[i]
		i++
	}
	value, err := strconv.ParseFloat(parts[i], 64)
	if err != nil {
		return fmt.Errorf("constraint %q: bad value: %v", s, err)
	}
	weight, err := strconv.ParseFloat(parts[i+1], 64)
	if err != nil {
		return fmt.Errorf("constraint %q: bad weight: %v", s, err)
	}
	*c = append(*c, busgen.Constraint{Kind: kind, Channel: channel, Value: value, Weight: weight})
	return nil
}

func main() {
	autopart := flag.Int("autopartition", 0, "re-partition into N modules by closeness (0 = keep the spec's modules)")
	width := flag.Int("width", 0, "force bus width (0 = run bus generation)")
	protoName := flag.String("protocol", "full", "protocol: full | half | fixed")
	groupName := flag.String("grouping", "single", "channel grouping: single | pairs | feasible")
	out := flag.String("o", "", "output file for refined VHDL (default stdout)")
	summary := flag.Bool("summary", false, "print synthesis summary")
	trace := flag.Bool("trace", false, "print bus-generation width trace")
	arbitrate := flag.Bool("arbitrate", false, "add REQ/GRANT bus arbitration")
	workers := flag.Int("j", 0, "concurrent workers for estimation sweeps (0 = all CPUs, 1 = serial)")
	area := flag.Bool("area", false, "print per-module area estimates")
	run := flag.Bool("run", false, "simulate the refined system")
	vcdPath := flag.String("vcd", "", "with -run: write waveforms to this VCD file")
	robust := flag.Bool("robust", false, "harden the protocol: bounded waits, retransmission, watchdogs")
	parity := flag.Bool("parity", false, "with -robust: add PAR/NACK parity lines over DATA+ID")
	timeoutClocks := flag.Int64("timeout", 0, "with -robust: handshake timeout in clocks (0 = default)")
	retries := flag.Int("retries", 0, "with -robust: retransmission budget per transaction (0 = default)")
	faults := flag.Int("faults", 0, "run a fault-injection campaign of N seeded runs per bus")
	faultSeed := flag.Int64("fault-seed", 1, "campaign seed (same seed, same campaign)")
	doVerify := flag.Bool("verify", false, "model-check the refined system for deadlocks, conflicts, liveness and delivery")
	verifyDepth := flag.Int("verify-depth", 0, "with -verify: search depth bound (0 = states bound only)")
	verifyDrops := flag.Int("verify-drops", 0, "with -verify: dropped-transition budget per path (0 = fault-free)")
	doRepair := flag.Bool("repair", false, "on violations, run the counterexample-guided repair loop (implies -verify)")
	repairBudget := flag.Int("repair-budget", 0, "bound repair iterations (0 = grammar size + 1)")
	repairTiers := flag.Int("repair-tiers", 0, "cap repair escalation: 1 local knobs, 2 +arbitration, 3 +protocol reselection (0 = full ladder)")
	expect := flag.String("expect", "", "judge the (post-repair) verdict: none | no-deadlock | deadlock | any")
	cexPath := flag.String("cex", "", "with -verify: write the first counterexample's replay waveform to this VCD file")
	var constraints constraintFlags
	flag.Var(&constraints, "constraint", "designer constraint (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ifsyn [flags] spec.sys")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch *expect {
	case "", "none", "no-deadlock", "deadlock", "any":
	default:
		fmt.Fprintf(os.Stderr, "ifsyn: unknown -expect %q (want none | no-deadlock | deadlock | any)\n", *expect)
		os.Exit(2)
	}

	sys, err := hdl.ParseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *autopart > 0 {
		if err := partition.Repartition(sys, *autopart, partition.Config{Balanced: true}); err != nil {
			fatal(err)
		}
		for _, m := range sys.Modules {
			names := make([]string, 0, len(m.Behaviors)+len(m.Variables))
			for _, b := range m.Behaviors {
				names = append(names, b.Name)
			}
			for _, v := range m.Variables {
				names = append(names, v.Name)
			}
			fmt.Fprintf(os.Stderr, "partition %s: %s\n", m.Name, strings.Join(names, ", "))
		}
	}

	cfg := busgen.DefaultConfig()
	cfg.Constraints = constraints
	switch *protoName {
	case "full":
		cfg.Protocol = spec.FullHandshake
	case "half":
		cfg.Protocol = spec.HalfHandshake
	case "fixed":
		cfg.Protocol = spec.FixedDelay
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}
	var grouping partition.GroupingPolicy
	switch *groupName {
	case "single":
		grouping = partition.SingleBus
	case "pairs":
		grouping = partition.ByModulePair
	case "feasible":
		grouping = partition.RateFeasible
	default:
		fatal(fmt.Errorf("unknown grouping %q", *groupName))
	}

	rep, err := core.Synthesize(sys, core.Options{
		Grouping:      grouping,
		Bus:           cfg,
		ForceWidth:    *width,
		Arbitrate:     *arbitrate,
		Workers:       *workers,
		Robust:        *robust,
		Parity:        *parity,
		TimeoutClocks: *timeoutClocks,
		MaxRetries:    *retries,
		Verify:        *doVerify,
		VerifyDepth:   *verifyDepth,
		VerifyDrops:   *verifyDrops,
		Repair:        *doRepair,
		RepairBudget:  *repairBudget,
		RepairTiers:   *repairTiers,
	})
	if err != nil {
		fatal(err)
	}
	if rep.Repair != nil {
		fmt.Fprint(os.Stderr, rep.Repair.Format())
	}

	if *summary {
		fmt.Fprint(os.Stderr, vhdlgen.Summary(sys))
	}
	if *trace {
		for _, br := range rep.Buses {
			if br.Gen != nil {
				fmt.Fprintf(os.Stderr, "bus %s width trace:\n%s", br.Bus.Name, busgen.FormatTrace(br.Gen))
			}
		}
	}

	if *area {
		model := estimate.DefaultAreaModel()
		reports, total := model.SystemArea(sys)
		names := make([]string, 0, len(reports))
		for n := range reports {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(os.Stderr, "area estimates (gate equivalents):")
		for _, n := range names {
			r := reports[n]
			fmt.Fprintf(os.Stderr, "  %-12s reg %8.0f  mem %8.0f  fu %8.0f  mux %8.0f  ctrl %8.0f  busif %8.0f  total %9.0f\n",
				n, r.Registers, r.Memory, r.FUs, r.Mux, r.Control, r.BusIf, r.Total())
		}
		fmt.Fprintf(os.Stderr, "  system total (with bus drivers): %.0f\n", total)
	}

	text := vhdlgen.Emit(sys)
	if *out == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}

	if *run {
		simCfg := sim.Config{}
		var vcdWriter *vcd.Writer
		if *vcdPath != "" {
			f, err := os.Create(*vcdPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			vcdWriter, err = vcd.NewWriter(f, sys)
			if err != nil {
				fatal(err)
			}
			simCfg.OnEvent = vcdWriter.OnEvent
		}
		s, err := sim.New(sys, simCfg)
		if err != nil {
			fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			fatal(err)
		}
		if vcdWriter != nil {
			if err := vcdWriter.Close(res.Clocks); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "waveforms written to %s\n", *vcdPath)
		}
		fmt.Fprintf(os.Stderr, "\nsimulated %d clocks, %d deltas, %d statements\n",
			res.Clocks, res.Deltas, res.Steps)
		keys := make([]string, 0, len(res.Finals))
		for k := range res.Finals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %-24s = %s\n", k, res.Finals[k])
		}
	}

	if *faults > 0 {
		for _, br := range rep.Buses {
			var abortVars []string
			if br.Ref != nil {
				abortVars = br.Ref.AbortKeys()
			}
			report, err := fault.Campaign(sys, br.Bus, fault.Config{
				Runs:      *faults,
				Seed:      *faultSeed,
				AbortVars: abortVars,
				Workers:   *workers,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "\nfault campaign: bus %s, %d runs, seed %d\n%s",
				br.Bus.Name, *faults, *faultSeed, report.Format())
		}
	}

	if rep.Verify != nil {
		fmt.Fprintf(os.Stderr, "\nverify: %s", rep.Verify.Format())
		if len(rep.Verify.Violations) > 0 {
			v := rep.Verify.Violations[0]
			if v.Cex != nil {
				if r, err := v.Cex.Replay(); err == nil {
					fmt.Fprintf(os.Stderr, "replay of [1]: %s\n", r.Outcome)
				}
				if *cexPath != "" {
					f, err := os.Create(*cexPath)
					if err != nil {
						fatal(err)
					}
					if err := v.Cex.WriteVCD(f); err != nil {
						f.Close()
						fatal(err)
					}
					if err := f.Close(); err != nil {
						fatal(err)
					}
					fmt.Fprintf(os.Stderr, "counterexample waveform written to %s\n", *cexPath)
				}
			}
		}
		if *expect != "" {
			// With -repair the judged report is the final iteration's —
			// the verdict on the repaired refinement actually emitted.
			deadlocked := false
			for _, v := range rep.Verify.Violations {
				if v.Kind == verify.Deadlock {
					deadlocked = true
				}
			}
			ok := false
			switch *expect {
			case "none":
				ok = rep.Verify.Clean()
			case "no-deadlock":
				ok = !deadlocked
			case "deadlock":
				ok = deadlocked
			case "any":
				ok = len(rep.Verify.Violations) > 0
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "verdict does not match -expect %s\n", *expect)
				os.Exit(1)
			}
		} else if len(rep.Verify.Violations) > 0 {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ifsyn:", err)
	os.Exit(1)
}
