// Command busgen runs bus generation (Section 3 of the paper) on a
// channel group described on the command line, without needing a full
// specification: each -channel flag gives a channel's name, message
// geometry and traffic, and -constraint flags give the designer
// constraints. The tool prints the width search trace and the selected
// implementation.
//
// Usage:
//
//	busgen -channel ch1:16:7:128:4000 -channel ch2:16:7:128:4000 \
//	       -constraint minpeak:ch2:10:10
//
// Channel form: NAME:DATABITS:ADDRBITS:ACCESSES:LIFETIMECLOCKS
// (ADDRBITS 0 for scalar channels).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/spec"
)

type channelFlags []*spec.Channel

func (c *channelFlags) String() string { return fmt.Sprintf("%d channels", len(*c)) }

func (c *channelFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 5 {
		return fmt.Errorf("channel %q: want NAME:DATABITS:ADDRBITS:ACCESSES:LIFETIME", s)
	}
	nums := make([]int, 4)
	for i, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return fmt.Errorf("channel %q: bad field %q", s, p)
		}
		nums[i] = v
	}
	dataBits, addrBits, accesses, lifetime := nums[0], nums[1], nums[2], nums[3]
	if dataBits < 1 || accesses < 1 || lifetime < 1 {
		return fmt.Errorf("channel %q: databits, accesses and lifetime must be positive", s)
	}
	// Wrap the geometry in a minimal synthetic system: one accessor
	// behavior and one remote variable shaped to give the requested
	// data/address bits.
	sys := spec.NewSystem("cli")
	m1 := sys.AddModule("m1")
	m2 := sys.AddModule("m2")
	b := m1.AddBehavior(spec.NewBehavior("P_" + parts[0]))
	var t spec.Type = spec.BitVector(dataBits)
	if addrBits > 0 {
		t = spec.Array(1<<addrBits, spec.BitVector(dataBits))
	}
	v := m2.AddVariable(spec.NewVar("V_"+parts[0], t))
	ch := &spec.Channel{
		Name: parts[0], Accessor: b, Var: v, Dir: spec.Write,
		Accesses: accesses, LifetimeClocks: int64(lifetime),
	}
	*c = append(*c, ch)
	return nil
}

type constraintFlags []busgen.Constraint

func (c *constraintFlags) String() string { return fmt.Sprintf("%d constraints", len(*c)) }

func (c *constraintFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	kinds := map[string]struct {
		kind       busgen.ConstraintKind
		hasChannel bool
	}{
		"minwidth": {busgen.MinBusWidth, false},
		"maxwidth": {busgen.MaxBusWidth, false},
		"minpeak":  {busgen.MinPeakRate, true},
		"maxpeak":  {busgen.MaxPeakRate, true},
		"minave":   {busgen.MinAveRate, true},
		"maxave":   {busgen.MaxAveRate, true},
	}
	k, ok := kinds[strings.ToLower(parts[0])]
	if !ok {
		return fmt.Errorf("unknown constraint kind %q", parts[0])
	}
	want := 3
	if k.hasChannel {
		want = 4
	}
	if len(parts) != want {
		return fmt.Errorf("constraint %q: want %d fields", s, want)
	}
	i := 1
	channel := ""
	if k.hasChannel {
		channel = parts[i]
		i++
	}
	value, err := strconv.ParseFloat(parts[i], 64)
	if err != nil {
		return err
	}
	weight, err := strconv.ParseFloat(parts[i+1], 64)
	if err != nil {
		return err
	}
	*c = append(*c, busgen.Constraint{Kind: k.kind, Channel: channel, Value: value, Weight: weight})
	return nil
}

func main() {
	var channels channelFlags
	var constraints constraintFlags
	flag.Var(&channels, "channel", "channel NAME:DATABITS:ADDRBITS:ACCESSES:LIFETIME (repeatable)")
	flag.Var(&constraints, "constraint", "designer constraint (repeatable)")
	protoName := flag.String("protocol", "full", "protocol: full | half | fixed")
	linear := flag.Bool("linear", false, "use the linear penalty (ablation; default squared)")
	workers := flag.Int("j", 0, "concurrent workers for the width sweep (0 = all CPUs, 1 = serial)")
	flag.Parse()

	if len(channels) == 0 {
		fmt.Fprintln(os.Stderr, "busgen: at least one -channel is required")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := busgen.DefaultConfig()
	cfg.Constraints = constraints
	switch *protoName {
	case "full":
		cfg.Protocol = spec.FullHandshake
	case "half":
		cfg.Protocol = spec.HalfHandshake
	case "fixed":
		cfg.Protocol = spec.FixedDelay
	default:
		fmt.Fprintf(os.Stderr, "busgen: unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	if *linear {
		cfg.Penalty = busgen.LinearPenalty
	}
	cfg.Workers = *workers

	est := estimate.New(channels)
	res, err := busgen.Generate(channels, est, cfg)
	if res != nil {
		fmt.Print(busgen.FormatTrace(res))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "busgen:", err)
		if groups, ok := busgen.Split(channels, est, cfg); ok {
			fmt.Fprintf(os.Stderr, "busgen: the group is implementable as %d buses:\n", len(groups))
			for i, g := range groups {
				names := make([]string, len(g))
				for j, c := range g {
					names[j] = c.Name
				}
				fmt.Fprintf(os.Stderr, "  bus %d: %s\n", i+1, strings.Join(names, ", "))
			}
		}
		os.Exit(1)
	}
	fmt.Printf("\nselected buswidth %d pins, bus rate %g bits/clock, cost %g\n",
		res.Width, res.BusRate, res.Cost)
	fmt.Printf("interconnect reduction vs separate channels (%d pins): %.1f %%\n",
		res.SeparateLines, res.InterconnectReduction*100)
}
