// Quickstart: the smallest complete tour of the interface-synthesis
// API. Two processes on one chip access a register and a memory on
// another chip; we derive the channels, let bus generation pick a
// width, generate the transfer protocol, print the refined
// specification, and simulate it to show the communication still
// computes the same values.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vhdlgen"
)

func main() {
	// 1. Specify the system: a producer writes 16 words into a remote
	//    memory, a checker reads a remote status register.
	sys := spec.NewSystem("quickstart")
	cpu := sys.AddModule("cpu")
	memchip := sys.AddModule("memchip")

	memory := memchip.AddVariable(spec.NewVar("MEMORY", spec.Array(16, spec.BitVector(8))))
	status := memchip.AddVariable(spec.NewVar("STATUS", spec.BitVector(8)))
	status.Init = spec.VecString("10100101")

	producer := cpu.AddBehavior(spec.NewBehavior("producer"))
	i := producer.AddVar("i", spec.Integer)
	producer.Body = []spec.Stmt{
		&spec.For{Var: i, From: spec.Int(0), To: spec.Int(15), Body: []spec.Stmt{
			spec.AssignVar(spec.At(spec.Ref(memory), spec.Ref(i)),
				spec.ToVec(spec.Mul(spec.Ref(i), spec.Int(3)), 8)),
		}},
	}

	checker := cpu.AddBehavior(spec.NewBehavior("checker"))
	seen := cpu.AddVariable(spec.NewVar("seen_status", spec.BitVector(8)))
	checker.Body = []spec.Stmt{
		spec.WaitFor(400), // stay off the bus while the producer runs
		spec.AssignVar(spec.Ref(seen), spec.Ref(status)),
	}

	// 2. Run interface synthesis: channel derivation, bus generation,
	//    protocol generation.
	rep, err := core.Synthesize(sys, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bus := rep.Buses[0].Bus
	fmt.Printf("derived %d channels; selected bus width %d (rate %.1f bits/clock)\n",
		len(rep.ChannelsDerived), bus.Width, rep.Buses[0].Gen.BusRate)
	fmt.Printf("bus wires: %d data + %d control + %d id = %d total\n\n",
		bus.Width, bus.Protocol.ControlLines(), bus.IDBits(), bus.TotalLines())

	// 3. Inspect the refined specification.
	fmt.Println(vhdlgen.Summary(sys))

	// 4. Simulate the refined system.
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d clocks, %d delta cycles\n", res.Clocks, res.Deltas)

	mem := res.Final("memchip", "MEMORY").(sim.ArrayVal)
	fmt.Printf("MEMORY[5] = %s (want 15 = \"00001111\")\n", mem.Elems[5])
	fmt.Printf("checker saw STATUS = %s (want \"10100101\")\n", res.Final("cpu", "seen_status"))
}
