// FLC reproduces the paper's headline case study interactively: the
// Matsushita fuzzy logic controller is partitioned onto two chips
// (Fig. 6), the effect of bus width on EVAL_R3 and CONV_R2 is swept
// (Fig. 7), a constrained design is selected by bus generation (Fig. 8
// design A), the protocol is generated for the chosen bus, and the
// refined controller is simulated against the abstract one to confirm
// the same control output.
//
// Run with: go run ./examples/flc [-temp N] [-hum N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/busgen"
	"repro/internal/estimate"
	"repro/internal/flc"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	temp := flag.Int("temp", 80, "sensed temperature (0..127)")
	hum := flag.Int("hum", 40, "sensed humidity (0..127)")
	flag.Parse()
	cfg := flc.Config{Temperature: *temp, Humidity: *hum}

	// Abstract (pre-synthesis) run for reference.
	abstract := flc.New(cfg)
	base := run(abstract.Sys, nil)
	fmt.Printf("abstract FLC: centroid=%s control=%s\n\n",
		base.Final("chip1", "centroid"), base.Final("chip1", "control"))

	// Fig. 7-style sweep: how bus width changes the two processes.
	f := flc.New(cfg)
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	fmt.Println("bus-width sweep (estimated clocks, full handshake):")
	fmt.Printf("  %5s  %10s  %10s\n", "width", "EVAL_R3", "CONV_R2")
	for _, w := range []int{1, 2, 4, 8, 16, 23} {
		fmt.Printf("  %5d  %10d  %10d\n", w,
			est.ExecTime(f.EvalR3, w, spec.FullHandshake),
			est.ExecTime(f.ConvR2, w, spec.FullHandshake))
	}

	// Fig. 8 design A: minimum peak rate of 10 bits/clock on ch2.
	bcfg := busgen.DefaultConfig()
	bcfg.Constraints = []busgen.Constraint{
		{Kind: busgen.MinPeakRate, Channel: "ch2", Value: 10, Weight: 10},
	}
	gen, err := busgen.Generate([]*spec.Channel{f.Ch1, f.Ch2}, est, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbus generation under design-A constraints: width %d pins, rate %g bits/clock, "+
		"interconnect reduction %.0f %%\n", gen.Width, gen.BusRate, gen.InterconnectReduction*100)

	// Protocol generation for the selected bus, then simulation.
	bus := f.BusB(gen.Width)
	if _, err := protogen.Generate(f.Sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		log.Fatal(err)
	}
	refined := run(f.Sys, nil)
	fmt.Printf("\nrefined FLC (bus B at %d pins): centroid=%s control=%s, %d clocks\n",
		gen.Width, refined.Final("chip1", "centroid"), refined.Final("chip1", "control"), refined.Clocks)

	if !base.Final("chip1", "control").Equal(refined.Final("chip1", "control")) {
		log.Fatal("FAIL: refined controller output differs from the abstract one")
	}
	fmt.Println("OK: refined specification is functionally equivalent")
}

func run(sys *spec.System, cost *estimate.CostModel) *sim.Result {
	s, err := sim.New(sys, sim.Config{Cost: cost})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
