// Explore demonstrates the specify-explore-refine workflow on the FLC's
// bus B: sweep every (width, protocol) candidate, print the Pareto
// frontier between pins, performance and interface area, pick the
// cheapest point satisfying a designer constraint (CONV_R2 under 2000
// clocks), refine the bus at that point, simulate the result and dump
// the bus waveforms to a VCD file for a wave viewer.
//
// Run with: go run ./examples/explore [-limit N] [-vcd out.vcd]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/estimate"
	"repro/internal/explore"
	"repro/internal/flc"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vcd"
)

func main() {
	limit := flag.Int64("limit", 2000, "CONV_R2 execution-time constraint in clocks")
	vcdPath := flag.String("vcd", "", "dump bus waveforms of the chosen design to this file")
	flag.Parse()

	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	space, err := explore.Sweep([]*spec.Channel{f.Ch1, f.Ch2}, est, explore.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pareto frontier (pins vs worst-case clocks vs interface area):")
	fmt.Print(explore.Format(space.Pareto()))

	best, err := space.Best(map[*spec.Behavior]int64{f.ConvR2: *limit})
	if err != nil {
		log.Fatalf("no design meets CONV_R2 <= %d clocks: %v", *limit, err)
	}
	fmt.Printf("\nchosen: width %d, %s (%d pins; CONV_R2 at %d clocks, limit %d)\n",
		best.Width, best.Protocol, best.Pins, best.ExecTime[f.ConvR2], *limit)

	// Refine at the chosen point and simulate.
	bus := f.BusB(best.Width)
	if _, err := protogen.Generate(f.Sys, bus, protogen.Config{Protocol: best.Protocol}); err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{}
	var w *vcd.Writer
	if *vcdPath != "" {
		file, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w, err = vcd.NewWriter(file, f.Sys)
		if err != nil {
			log.Fatal(err)
		}
		cfg.OnEvent = w.OnEvent
	}
	s, err := sim.New(f.Sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	if w != nil {
		if err := w.Close(res.Clocks); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("waveforms written to %s\n", *vcdPath)
	}
	fmt.Printf("refined FLC simulated: %d clocks, control output %s\n",
		res.Clocks, res.Final("chip1", "control"))
}
