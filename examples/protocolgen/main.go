// Protocolgen walks through Section 4 of the paper on its own example
// (Figs. 3-5): behaviors P and Q accessing variables X and MEM over
// four channels merged into an 8-bit handshake bus. The program prints
// the artifacts the paper's figures show — the HandShakeBus record, the
// generated SendCH0/ReceiveCH0 procedures, the rewritten behaviors and
// the generated variable processes — then simulates the refined system
// and verifies it computes X = 32, MEM(5) = 39, MEM(60) = 9.
//
// Run with: go run ./examples/protocolgen
package main

import (
	"fmt"
	"log"

	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vhdlgen"
	"repro/internal/workloads"
)

func main() {
	sys, bus := workloads.PQ()

	fmt.Println("=== channels grouped into bus B (Fig. 3) ===")
	for _, c := range bus.Channels {
		fmt.Printf("  %s  (%d data + %d addr bits per message)\n", c, c.DataBits(), c.AddrBits())
	}

	ref, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== bus declaration and CH0 procedures (Fig. 4) ===")
	fmt.Printf("IDs: %d lines for %d channels; ", bus.IDBits(), len(bus.Channels))
	for _, c := range bus.Channels {
		fmt.Printf("%s=%q ", c.Name, c.ID.String())
	}
	fmt.Print("\n\n")
	fmt.Println(vhdlgen.EmitProcedure(ref.AccessorProcs[bus.Channels[0]]))

	fmt.Println("=== refined behaviors and variable processes (Fig. 5) ===")
	for _, name := range []string{"P", "Q", "Xproc", "MEMproc"} {
		fmt.Println(vhdlgen.EmitBehavior(sys.FindBehavior(name)))
		fmt.Println()
	}

	fmt.Println("=== simulating the refined specification ===")
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	x := res.Final("comp2", "X").(sim.VecVal)
	mem := res.Final("comp2", "MEM").(sim.ArrayVal)
	fmt.Printf("clocks: %d   deltas: %d   bus events: %d\n",
		res.Clocks, res.Deltas, res.SignalEvents["B"])
	fmt.Printf("X       = %d (want 32)\n", x.V.Uint64())
	fmt.Printf("MEM(5)  = %d (want 39 = X + 7)\n", mem.Elems[5].(sim.VecVal).V.Uint64())
	fmt.Printf("MEM(60) = %d (want 9 = COUNT)\n", mem.Elems[60].(sim.VecVal).V.Uint64())
}
