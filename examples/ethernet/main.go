// Ethernet runs interface synthesis on the Ethernet network coprocessor
// workload: the receive/transmit pipeline on the protocol chip accesses
// the frame buffer and statistics registers on the memory chip over
// derived channels, which are merged into a single bus, implemented and
// simulated. The example prints the derived channels, the selected bus,
// and the coprocessor statistics before and after refinement.
//
// Run with: go run ./examples/ethernet [-frames N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/vhdlgen"
	"repro/internal/workloads"
)

func main() {
	frames := flag.Int("frames", 8, "number of frames on the synthetic line (1..16)")
	flag.Parse()

	// Reference run with abstract channels.
	base := run(workloads.Ethernet(*frames))

	// Synthesized run.
	sys := workloads.Ethernet(*frames)
	rep, err := core.Synthesize(sys, core.Options{Grouping: partition.SingleBus})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d channels:\n", len(rep.ChannelsDerived))
	for _, c := range rep.ChannelsDerived {
		fmt.Printf("  %-6s %s (%d bits/message)\n", c.Name, c, c.MessageBits())
	}
	fmt.Println()
	fmt.Println(vhdlgen.Summary(sys))

	refined := run(sys)
	printStats := func(tag string, res *sim.Result) {
		stats := res.Finals["chip2.STATS"].(sim.ArrayVal)
		fmt.Printf("%-10s frames=%s crcErrors=%s rejected=%s transmitted=%s txsum=%s clocks=%d\n",
			tag, stats.Elems[0], stats.Elems[1], stats.Elems[2], stats.Elems[3],
			res.Finals["chip1.txsum"], res.Clocks)
	}
	printStats("abstract:", base)
	printStats("refined:", refined)

	for _, key := range []string{"chip2.STATS", "chip2.FRAMEBUF", "chip1.txsum"} {
		if !base.Finals[key].Equal(refined.Finals[key]) {
			log.Fatalf("FAIL: %s differs after synthesis", key)
		}
	}
	fmt.Println("OK: synthesized coprocessor is functionally equivalent")
}

func run(sys *spec.System) *sim.Result {
	s, err := sim.New(sys, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
