// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Key reproduced values are attached to the benchmark output
// as custom metrics, so a -bench run doubles as a reproduction report:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/busgen"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/flc"
	"repro/internal/hdl"
	"repro/internal/protogen"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// BenchmarkFig2ChannelMerge regenerates Fig. 2: merging channels A
// (4 b/s) and B (12 b/s) into a 16 b/s bus that preserves the makespan.
func BenchmarkFig2ChannelMerge(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2()
	}
	if !r.MakespanPreserved {
		b.Fatal("makespan not preserved")
	}
	b.ReportMetric(r.BusRate, "busRate(b/s)")
	b.ReportMetric(r.Rates["A"], "aveRateA(b/s)")
	b.ReportMetric(r.Rates["B"], "aveRateB(b/s)")
}

// BenchmarkFig7PerfVsWidth regenerates Fig. 7: the estimator sweep of
// EVAL_R3 and CONV_R2 execution time over bus widths 1..24.
func BenchmarkFig7PerfVsWidth(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7()
	}
	b.ReportMetric(float64(r.Points[0].EvalR3), "evalR3@w1(clk)")
	b.ReportMetric(float64(r.Points[22].EvalR3), "evalR3@w23(clk)")
	b.ReportMetric(float64(r.Points[0].ConvR2), "convR2@w1(clk)")
	b.ReportMetric(float64(r.Points[22].ConvR2), "convR2@w23(clk)")
	b.ReportMetric(float64(r.MinWidthMeetingConstraint), "minWidthFor2000clk")
}

// BenchmarkFig7SimCrossCheck validates the Fig. 7 shape on the
// cycle-counting simulator (bus B protocol-generated per width).
func BenchmarkFig7SimCrossCheck(b *testing.B) {
	var points []experiments.Fig7SimPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig7SimCheck([]int{1, 8, 23})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(points[0].Clocks), "simClocks@w1")
	b.ReportMetric(float64(points[1].Clocks), "simClocks@w8")
	b.ReportMetric(float64(points[2].Clocks), "simClocks@w23")
}

// BenchmarkFig8BusGeneration regenerates Fig. 8: the three constrained
// designs selecting widths 20, 18 and 16.
func BenchmarkFig8BusGeneration(b *testing.B) {
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Rows[0].Width), "widthA(pins)")
	b.ReportMetric(float64(r.Rows[1].Width), "widthB(pins)")
	b.ReportMetric(float64(r.Rows[2].Width), "widthC(pins)")
	b.ReportMetric(r.Rows[0].ReductionPct, "reductionA(%)")
	b.ReportMetric(r.Rows[2].ReductionPct, "reductionC(%)")
}

// BenchmarkProtocolGeneration measures protocol generation on the
// Fig. 3 walkthrough system (four channels, 8-bit handshake bus).
func BenchmarkProtocolGeneration(b *testing.B) {
	b.ReportAllocs()
	var ref *protogen.Refinement
	for i := 0; i < b.N; i++ {
		sys, bus := workloads.PQ()
		var err error
		ref, err = protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ref.Servers)), "varProcesses")
	b.ReportMetric(float64(ref.RewrittenStmts), "rewrittenStmts")
}

// BenchmarkRefinedSimulation measures simulation of the refined Fig. 3
// system (the paper's simulatability claim, exercised).
func BenchmarkRefinedSimulation(b *testing.B) {
	b.ReportAllocs()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		sys, bus := workloads.PQ()
		if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sys, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		res, err = s.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Clocks), "simClocks")
	b.ReportMetric(float64(res.Deltas), "deltaCycles")
}

// BenchmarkProtocolDelayModels is the protocol ablation: estimated
// CONV_R2 execution time at width 8 under each selectable protocol.
func BenchmarkProtocolDelayModels(b *testing.B) {
	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	var full, half, fixed int64
	for i := 0; i < b.N; i++ {
		full = est.ExecTime(f.ConvR2, 8, spec.FullHandshake)
		half = est.ExecTime(f.ConvR2, 8, spec.HalfHandshake)
		fixed = est.ExecTime(f.ConvR2, 8, spec.FixedDelay)
	}
	b.ReportMetric(float64(full), "fullHS(clk)")
	b.ReportMetric(float64(half), "halfHS(clk)")
	b.ReportMetric(float64(fixed), "fixedDelay(clk)")
}

// BenchmarkCostFunctionAblation compares the paper's squared-violation
// penalty against a linear penalty on design B's constraint set (with
// rate quantization off, the shapes differ: 18 vs 19 pins).
func BenchmarkCostFunctionAblation(b *testing.B) {
	var wSq, wLin int
	for i := 0; i < b.N; i++ {
		f := flc.New(flc.DefaultConfig())
		est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
		cfg := busgen.DefaultConfig()
		cfg.QuantizeRates = false
		cfg.Constraints = experiments.Fig8Designs()["B"]
		rSq, err := busgen.Generate([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Penalty = busgen.LinearPenalty
		rLin, err := busgen.Generate([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
		if err != nil {
			b.Fatal(err)
		}
		wSq, wLin = rSq.Width, rLin.Width
	}
	b.ReportMetric(float64(wSq), "widthSquared(pins)")
	b.ReportMetric(float64(wLin), "widthLinear(pins)")
}

// BenchmarkEstimator measures the statement-level performance estimator
// on the full FLC behavior set. CompTime memoizes, so each iteration
// invalidates first: the number reported is the cost of the cold
// statement-tree walks, the quantity a sweep pays exactly once.
func BenchmarkEstimator(b *testing.B) {
	f := flc.New(flc.DefaultConfig())
	est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
	b.ReportAllocs()
	var total int64
	for i := 0; i < b.N; i++ {
		est.Invalidate()
		total = 0
		for _, beh := range f.Sys.Behaviors() {
			total += est.CompTime(beh)
		}
	}
	b.ReportMetric(float64(total), "flcCompClocks")
}

// BenchmarkSweepWide measures the exploration engine end to end —
// estimator construction plus a full width x protocol sweep — on the
// large Mesh workload (25 behaviors, 50 channels), serial path.
func BenchmarkSweepWide(b *testing.B) {
	sys := workloads.Mesh(5)
	b.ReportAllocs()
	var points int
	for i := 0; i < b.N; i++ {
		est := estimate.New(sys.Channels)
		sp, err := explore.Sweep(sys.Channels, est, explore.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		points = len(sp.Points)
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkSweepParallel is BenchmarkSweepWide with the sweep fanned
// across GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) {
	sys := workloads.Mesh(5)
	b.ReportAllocs()
	var points int
	for i := 0; i < b.N; i++ {
		est := estimate.New(sys.Channels)
		sp, err := explore.Sweep(sys.Channels, est, explore.Config{})
		if err != nil {
			b.Fatal(err)
		}
		points = len(sp.Points)
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkHDLParse measures the front end on the Fig. 3 source.
func BenchmarkHDLParse(b *testing.B) {
	src := `
system PQ is
  module comp1 is
    behavior P is
      variable AD : integer;
    begin
      AD := 5;
      X <= 32;
      MEM(AD) := X + 7;
    end behavior;
    behavior Q is
      variable COUNT : bit_vector(15 downto 0);
    begin
      COUNT := 9;
      MEM(60) := COUNT;
    end behavior;
  end module;
  module comp2 is
    variable X : bit_vector(15 downto 0);
    variable MEM : array(0 to 63) of bit_vector(15 downto 0);
  end module;
end system;`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hdl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSynthesisFLC measures the complete flow — channel
// derivation through protocol generation — on the FLC under design-A
// constraints.
func BenchmarkFullSynthesisFLC(b *testing.B) {
	b.ReportAllocs()
	var width int
	for i := 0; i < b.N; i++ {
		f := flc.New(flc.DefaultConfig())
		cfg := busgen.DefaultConfig()
		cfg.Constraints = experiments.Fig8Designs()["A"]
		est := estimate.New([]*spec.Channel{f.Ch1, f.Ch2})
		gen, err := busgen.Generate([]*spec.Channel{f.Ch1, f.Ch2}, est, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bus := f.BusB(gen.Width)
		if _, err := protogen.Generate(f.Sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
			b.Fatal(err)
		}
		width = gen.Width
	}
	b.ReportMetric(float64(width), "selectedWidth(pins)")
}

// BenchmarkSynthesizedEthernet measures end-to-end synthesis plus
// simulation of the Ethernet coprocessor workload.
func BenchmarkSynthesizedEthernet(b *testing.B) {
	b.ReportAllocs()
	var clocks int64
	for i := 0; i < b.N; i++ {
		sys := workloads.Ethernet(4)
		if _, err := core.Synthesize(sys, core.Options{}); err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(sys, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		clocks = res.Clocks
	}
	b.ReportMetric(float64(clocks), "simClocks")
}

// BenchmarkBusInterfaceAreaVsWidth is the area-side ablation: a
// narrower bus means more word states in the generated transfer FSMs
// (more interface area on the accessor chip), while a wider bus means
// more wire drivers. Reported for the Fig. 3 system at widths 2 and 16.
func BenchmarkBusInterfaceAreaVsWidth(b *testing.B) {
	model := estimate.DefaultAreaModel()
	measure := func(width int) (busIf, drivers float64) {
		sys, bus := workloads.PQ()
		bus.Width = width
		if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
			b.Fatal(err)
		}
		p := sys.FindBehavior("P")
		return model.BehaviorArea(p).BusIf, model.BusArea(bus)
	}
	var fsm2, drv2, fsm16, drv16 float64
	for i := 0; i < b.N; i++ {
		fsm2, drv2 = measure(2)
		fsm16, drv16 = measure(16)
	}
	if fsm2 <= fsm16 || drv16 <= drv2 {
		b.Fatal("area trade-off inverted")
	}
	b.ReportMetric(fsm2, "xferFSM@w2(gates)")
	b.ReportMetric(fsm16, "xferFSM@w16(gates)")
	b.ReportMetric(drv2, "drivers@w2(gates)")
	b.ReportMetric(drv16, "drivers@w16(gates)")
}
