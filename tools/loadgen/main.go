// Command loadgen load-tests a running ifsynd daemon: it fires
// thousands of concurrent mixed requests (Mesh, FLC, Ethernet and PQ
// variants across synthesize / sweep / bounded verify) plus cancel
// probes that abandon uniquely-keyed requests mid-flight, then prints
// the aggregate as JSON: reqs/s, p50/p99 latency, cache hit rate, and
// client- plus server-side cancel latency.
//
// Usage:
//
//	go run ./cmd/ifsynd &
//	go run ./tools/loadgen -n 2000 -c 64 -cancels 16
//
//	-url U      daemon base URL (default http://127.0.0.1:8047)
//	-n N        total requests (default 2000)
//	-c N        concurrent client goroutines (default 64)
//	-cancels N  cancel probes abandoned mid-flight (default 8)
//	-after D    abandon delay per probe (default 30ms)
//	-timeout D  per-request timeout (default 120s)
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"flag"

	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8047", "daemon base URL")
	n := flag.Int("n", 2000, "total requests")
	c := flag.Int("c", 64, "concurrent clients")
	cancels := flag.Int("cancels", 8, "cancel probes")
	after := flag.Duration("after", 30*time.Millisecond, "probe abandon delay")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request timeout")
	flag.Parse()

	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:      *url,
		Requests:     *n,
		Concurrency:  *c,
		CancelProbes: *cancels,
		CancelAfter:  *after,
		Timeout:      *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep) //nolint:errcheck
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
}
