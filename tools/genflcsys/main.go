// Command genflcsys regenerates testdata/flc.sys: the textual form of
// the reconstructed fuzzy-logic-controller case study, produced by the
// spec printer from the canonical builder in internal/flc.
package main

import (
	"fmt"
	"os"

	"repro/internal/flc"
	"repro/internal/hdl"
)

func main() {
	f := flc.New(flc.DefaultConfig())
	src, err := hdl.Print(f.Sys)
	if err != nil {
		panic(err)
	}
	header := "-- The Matsushita fuzzy logic controller case study (Fig. 6 of the\n" +
		"-- paper), generated from the canonical builder by tools/genflcsys.\n" +
		"-- Try: go run ./cmd/ifsyn -summary -trace -run testdata/flc.sys\n"
	if err := os.WriteFile("testdata/flc.sys", []byte(header+src), 0o644); err != nil {
		panic(err)
	}
	fmt.Println(len(src), "bytes written")
}
