// Command bench measures the model checker's exploration throughput
// (states/sec), allocation footprint (bytes and allocs per stored
// state) and wall time on the reference PQ workloads, and records the
// numbers in BENCH_verify.json so the performance trajectory across PRs
// stays on the record. By default a run is appended to an existing
// file; -fresh overwrites it.
//
// Usage:
//
//	go run ./tools/bench -label pr5-binary-codec [-o BENCH_verify.json]
//
//	-label L   run label recorded in the file (default "dev")
//	-o FILE    output file (default BENCH_verify.json)
//	-fresh     overwrite the file instead of appending
//	-reps N    repetitions per scenario; best wall time wins (default 3)
//	-j N       exploration workers (0 = all CPUs)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// Measurement is one scenario's record.
type Measurement struct {
	Scenario       string  `json:"scenario"`
	States         int     `json:"states"`
	Transitions    int64   `json:"transitions"`
	WallMS         float64 `json:"wallMs"`
	StatesPerSec   float64 `json:"statesPerSec"`
	BytesPerState  float64 `json:"bytesPerState"`
	AllocsPerState float64 `json:"allocsPerState"`
	Violations     int     `json:"violations"`
	Incomplete     string  `json:"incomplete,omitempty"`
}

// Run is one invocation of this tool: a labelled set of measurements.
type Run struct {
	Label     string        `json:"label"`
	GoVersion string        `json:"goVersion"`
	CPUs      int           `json:"cpus"`
	Workers   int           `json:"workers"`
	Scenarios []Measurement `json:"scenarios"`
}

// File is the committed BENCH_verify.json shape.
type File struct {
	Comment string `json:"comment"`
	Runs    []Run  `json:"runs"`
}

const fileComment = "Model-checker performance trajectory; append a run with: go run ./tools/bench -label <pr-label>"

// scenario builds a fresh refined system (protogen mutates the input
// spec, so each measurement synthesizes from scratch) plus the checker
// configuration to measure.
type scenario struct {
	name  string
	build func(workers int) (*spec.System, verify.Config, error)
}

func refinedPQ(robust bool, workers int, vcfg verify.Config) (*spec.System, verify.Config, error) {
	sys, _ := workloads.PQ()
	rep, err := core.Synthesize(sys, core.Options{
		Bus:     core.Options{}.Bus,
		Robust:  robust,
		Workers: workers,
	})
	if err != nil {
		return nil, vcfg, err
	}
	for _, br := range rep.Buses {
		vcfg.AbortVars = append(vcfg.AbortVars, br.Ref.AbortKeys()...)
	}
	vcfg.Workers = workers
	return sys, vcfg, nil
}

func scenarios() []scenario {
	return []scenario{
		{"baseline-drop1", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(false, w, verify.Config{MaxDrops: 1})
		}},
		{"robust-drop0", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{})
		}},
		{"robust-drop1-100k", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{MaxDrops: 1, MaxStates: 100_000})
		}},
	}
}

func measure(sc scenario, workers, reps int) (Measurement, error) {
	best := Measurement{Scenario: sc.name}
	for r := 0; r < reps; r++ {
		sys, vcfg, err := sc.build(workers)
		if err != nil {
			return best, fmt.Errorf("%s: synthesis: %w", sc.name, err)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep, err := verify.Check(sys, vcfg)
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return best, fmt.Errorf("%s: check: %w", sc.name, err)
		}
		m := Measurement{
			Scenario:       sc.name,
			States:         rep.States,
			Transitions:    rep.Transitions,
			WallMS:         float64(wall.Microseconds()) / 1000,
			StatesPerSec:   float64(rep.States) / wall.Seconds(),
			BytesPerState:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(rep.States),
			AllocsPerState: float64(m1.Mallocs-m0.Mallocs) / float64(rep.States),
			Violations:     len(rep.Violations),
			Incomplete:     rep.IncompleteReason,
		}
		if r == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best, nil
}

func main() {
	label := flag.String("label", "dev", "run label recorded in the output file")
	out := flag.String("o", "BENCH_verify.json", "output file")
	fresh := flag.Bool("fresh", false, "overwrite the output file instead of appending")
	reps := flag.Int("reps", 3, "repetitions per scenario (best wall time wins)")
	workers := flag.Int("j", 0, "exploration workers (0 = all CPUs)")
	flag.Parse()

	run := Run{
		Label:     *label,
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Workers:   *workers,
	}
	for _, sc := range scenarios() {
		m, err := measure(sc, *workers, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %7d states %8d transitions %9.1f ms %10.0f states/s %8.0f B/state %6.1f allocs/state\n",
			m.Scenario, m.States, m.Transitions, m.WallMS, m.StatesPerSec, m.BytesPerState, m.AllocsPerState)
		run.Scenarios = append(run.Scenarios, m)
	}

	var f File
	if !*fresh {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s exists but is not parseable (%v); use -fresh to overwrite\n", *out, err)
				os.Exit(1)
			}
		}
	}
	f.Comment = fileComment
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded run %q in %s\n", *label, *out)
}
