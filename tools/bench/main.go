// Command bench measures the repo's two heavy inner loops on the
// reference PQ workloads and records the numbers so the performance
// trajectory across PRs stays on the record:
//
//   - suite "verify" (default): model-checker exploration throughput
//     (states/sec), allocation footprint (bytes and allocs per stored
//     state) and wall time, appended to BENCH_verify.json.
//   - suite "fault": fault-campaign throughput (runs/sec), allocation
//     footprint (bytes and allocs per run) and the outcome histogram,
//     appended to BENCH_fault.json. The robust-unpooled scenario runs
//     the same campaign on the classic goroutine-per-process kernel,
//     so each record carries its own pooled-vs-classic speedup
//     evidence.
//   - suite "repair": end-to-end CEGIS repair trajectories on the
//     exhaustively-provable PQSolo workload, appended to
//     BENCH_repair.json: iterations, applied mutations, escalation
//     tier, states verified across all iterations and wall time, for
//     both the tier-1 lost-ack repair and the escalating half-handshake
//     run that reselects the protocol.
//   - suite "serve": the ifsynd daemon under concurrent mixed load
//     (internal/serve's harness against an in-process instance),
//     appended to BENCH_serve.json: reqs/s, p50/p99 latency, cache hit
//     rate and cancel latency for a cold pass (misses, dedups, cancel
//     probes) and a warm pass (cache replay throughput).
//
// By default a run is appended to an existing file; -fresh overwrites.
//
// Usage:
//
//	go run ./tools/bench -label pr5-binary-codec [-o BENCH_verify.json]
//	go run ./tools/bench -suite fault -label pr6-batch -runs 100000
//	go run ./tools/bench -suite repair -label pr8-escalation
//	go run ./tools/bench -suite serve -label pr9-daemon -reqs 2000
//
//	-label L    run label recorded in the file (default "dev")
//	-suite S    verify | fault | repair | serve (default verify)
//	-o FILE     output file (default BENCH_<suite>.json)
//	-fresh      overwrite the file instead of appending
//	-reps N     repetitions per scenario; best wall time wins (default 3)
//	-j N        worker goroutines (0 = all CPUs); -workers is an alias
//	-runs N     faulty runs per fault-suite scenario (default 100000)
//	-reqs N     requests per serve-suite pass (default 2000)
//	-conc N     concurrent clients in the serve suite (default 64)
//	-cancels N  cancel probes in the serve suite's cold pass (default 8)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/fault"
	"repro/internal/protogen"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// Measurement is one scenario's record.
type Measurement struct {
	Scenario       string  `json:"scenario"`
	States         int     `json:"states"`
	Transitions    int64   `json:"transitions"`
	WallMS         float64 `json:"wallMs"`
	StatesPerSec   float64 `json:"statesPerSec"`
	BytesPerState  float64 `json:"bytesPerState"`
	AllocsPerState float64 `json:"allocsPerState"`
	Violations     int     `json:"violations"`
	Incomplete     string  `json:"incomplete,omitempty"`
	// Spill telemetry for memory-budgeted scenarios (absent when the
	// run stayed in RAM).
	MemBudgetMB   int64 `json:"memBudgetMB,omitempty"`
	SpilledStates int   `json:"spilledStates,omitempty"`
	SpillMB       int64 `json:"spillMB,omitempty"`
}

// FaultMeasurement is one fault-suite scenario's record.
type FaultMeasurement struct {
	Scenario     string  `json:"scenario"`
	Runs         int     `json:"runs"`
	WallMS       float64 `json:"wallMs"`
	RunsPerSec   float64 `json:"runsPerSec"`
	BytesPerRun  float64 `json:"bytesPerRun"`
	AllocsPerRun float64 `json:"allocsPerRun"`
	// Outcome histogram over the campaign's faulty runs.
	Survived       int `json:"survived"`
	AbortedCleanly int `json:"abortedCleanly"`
	Corrupted      int `json:"corrupted"`
	Deadlocked     int `json:"deadlocked"`
}

// RepairMeasurement is one repair-suite scenario's record.
type RepairMeasurement struct {
	Scenario string `json:"scenario"`
	// Iterations is the number of verify-classify-regenerate turns the
	// loop took (including the final clean verification).
	Iterations int `json:"iterations"`
	// Mutations lists the applied grammar members in order.
	Mutations []string `json:"mutations"`
	// FinalTier is the highest escalation tier the loop reached.
	FinalTier int `json:"finalTier"`
	// StatesTotal sums the model checker's stored states across every
	// iteration — the loop's whole verification workload; StatesFinal is
	// the final (clean) iteration alone.
	StatesTotal int     `json:"statesTotal"`
	StatesFinal int     `json:"statesFinal"`
	WallMS      float64 `json:"wallMs"`
	// Exhaustive reports whether the final verdict completed its search.
	Exhaustive bool `json:"exhaustive"`
}

// ServeMeasurement is one serve-suite scenario's record: the load
// harness's aggregate over an in-process ifsynd instance.
type ServeMeasurement struct {
	Scenario string `json:"scenario"`
	serve.LoadReport
}

// Run is one invocation of this tool: a labelled set of measurements.
type Run struct {
	Label     string              `json:"label"`
	GoVersion string              `json:"goVersion"`
	CPUs      int                 `json:"cpus"`
	Workers   int                 `json:"workers"`
	Scenarios []Measurement       `json:"scenarios,omitempty"`
	Fault     []FaultMeasurement  `json:"fault,omitempty"`
	Repair    []RepairMeasurement `json:"repair,omitempty"`
	Serve     []ServeMeasurement  `json:"serve,omitempty"`
}

// File is the committed BENCH_verify.json / BENCH_fault.json shape.
type File struct {
	Comment string `json:"comment"`
	Runs    []Run  `json:"runs"`
}

const fileComment = "Model-checker performance trajectory; append a run with: go run ./tools/bench -label <pr-label>"

const faultFileComment = "Fault-campaign performance trajectory; append a run with: go run ./tools/bench -suite fault -label <pr-label>"

const repairFileComment = "CEGIS repair trajectory; append a run with: go run ./tools/bench -suite repair -label <pr-label>"

const serveFileComment = "ifsynd daemon load trajectory; append a run with: go run ./tools/bench -suite serve -label <pr-label>"

// measureServe load-tests an in-process ifsynd: a cold pass over the
// mixed workload (misses, dedups and cancel probes dominate) followed
// by a warm pass against the now-populated cache (replay throughput).
func measureServe(workers, reqs, conc, cancels int) ([]ServeMeasurement, error) {
	srv, err := serve.New(serve.Config{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cold, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:      hs.URL,
		Requests:     reqs,
		Concurrency:  conc,
		CancelProbes: cancels,
	})
	if err != nil {
		return nil, fmt.Errorf("serve cold: %w", err)
	}
	warm, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:     hs.URL,
		Requests:    reqs,
		Concurrency: conc,
	})
	if err != nil {
		return nil, fmt.Errorf("serve warm: %w", err)
	}
	if cold.Errors > 0 || warm.Errors > 0 {
		return nil, fmt.Errorf("serve load errors: cold %d, warm %d", cold.Errors, warm.Errors)
	}
	return []ServeMeasurement{
		{Scenario: "mixed-cold", LoadReport: *cold},
		{Scenario: "mixed-warm", LoadReport: *warm},
	}, nil
}

// scenario builds a fresh refined system (protogen mutates the input
// spec, so each measurement synthesizes from scratch) plus the checker
// configuration to measure.
type scenario struct {
	name  string
	build func(workers int) (*spec.System, verify.Config, error)
}

func refinedPQ(robust bool, workers int, vcfg verify.Config) (*spec.System, verify.Config, error) {
	sys, _ := workloads.PQ()
	rep, err := core.Synthesize(sys, core.Options{
		Bus:     core.Options{}.Bus,
		Robust:  robust,
		Workers: workers,
	})
	if err != nil {
		return nil, vcfg, err
	}
	for _, br := range rep.Buses {
		vcfg.AbortVars = append(vcfg.AbortVars, br.Ref.AbortKeys()...)
	}
	vcfg.Workers = workers
	return sys, vcfg, nil
}

func scenarios() []scenario {
	return []scenario{
		{"baseline-drop1", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(false, w, verify.Config{MaxDrops: 1})
		}},
		{"robust-drop0", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{})
		}},
		{"robust-drop1-100k", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{MaxDrops: 1, MaxStates: 100_000})
		}},
		// The exhaustive drop-1 space (~679k states) under a 64 MiB
		// budget: most of the frontier's history lives on disk, so this
		// is the spill path's headline number.
		{"robust-drop1-full", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{
				MaxDrops: 1, MaxStates: 1_500_000, MemBudget: 64 << 20,
			})
		}},
		// The exhaustive drop-2 space (~3.9M states) under 256 MiB —
		// beyond what the in-RAM store could previously hold comfortably.
		{"robust-drop2", func(w int) (*spec.System, verify.Config, error) {
			return refinedPQ(true, w, verify.Config{
				MaxDrops: 2, MaxStates: 4_000_000, MemBudget: 256 << 20,
			})
		}},
	}
}

// faultScenario builds a fresh refined system plus the bus and abort
// keys a campaign needs. Each measurement synthesizes from scratch for
// the same reason the verify scenarios do: protogen mutates the spec.
type faultScenario struct {
	name     string
	unpooled bool
	build    func(workers int) (*spec.System, *spec.Bus, []string, error)
}

func faultPQ(parity bool, workers int) (*spec.System, *spec.Bus, []string, error) {
	sys, _ := workloads.PQ()
	rep, err := core.Synthesize(sys, core.Options{
		Robust:  true,
		Parity:  parity,
		Workers: workers,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if len(rep.Buses) == 0 {
		return nil, nil, nil, fmt.Errorf("synthesis produced no bus")
	}
	br := rep.Buses[0]
	var abortVars []string
	if br.Ref != nil {
		abortVars = br.Ref.AbortKeys()
	}
	return sys, br.Bus, abortVars, nil
}

func faultScenarios() []faultScenario {
	robust := func(w int) (*spec.System, *spec.Bus, []string, error) {
		return faultPQ(false, w)
	}
	parity := func(w int) (*spec.System, *spec.Bus, []string, error) {
		return faultPQ(true, w)
	}
	return []faultScenario{
		{"robust-pooled", false, robust},
		{"robust-parity-pooled", false, parity},
		// Same campaign on the classic goroutine-per-process kernel:
		// the pooled/unpooled runs-per-sec ratio is the speedup of the
		// batch engine, measured in the same process on the same seeds.
		{"robust-unpooled", true, robust},
	}
}

func measureFault(sc faultScenario, runs, workers, reps int) (FaultMeasurement, error) {
	best := FaultMeasurement{Scenario: sc.name}
	for r := 0; r < reps; r++ {
		sys, bus, abortVars, err := sc.build(workers)
		if err != nil {
			return best, fmt.Errorf("%s: synthesis: %w", sc.name, err)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep, err := fault.Campaign(sys, bus, fault.Config{
			Runs:      runs,
			Seed:      1,
			AbortVars: abortVars,
			Workers:   workers,
			Unpooled:  sc.unpooled,
		})
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return best, fmt.Errorf("%s: campaign: %w", sc.name, err)
		}
		m := FaultMeasurement{
			Scenario:       sc.name,
			Runs:           rep.Runs,
			WallMS:         float64(wall.Microseconds()) / 1000,
			RunsPerSec:     float64(rep.Runs) / wall.Seconds(),
			BytesPerRun:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(rep.Runs),
			AllocsPerRun:   float64(m1.Mallocs-m0.Mallocs) / float64(rep.Runs),
			Survived:       rep.Totals[fault.Survived],
			AbortedCleanly: rep.Totals[fault.AbortedCleanly],
			Corrupted:      rep.Totals[fault.Corrupted],
			Deadlocked:     rep.Totals[fault.Deadlocked],
		}
		if r == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best, nil
}

// repairScenario names a base generation config the repair loop starts
// from; every scenario runs on PQSolo at drop budget 1 so the final
// verdict is exhaustive.
type repairScenario struct {
	name string
	base protogen.Config
}

func repairScenarios() []repairScenario {
	return []repairScenario{
		// The headline tier-1 repair: the hardened protocol's lost-ack
		// window closes with local knobs.
		{"robust-solo-drop1", protogen.Config{
			Protocol: spec.FullHandshake, Robust: true,
			TimeoutClocks: 8, MaxRetries: 2,
		}},
		// The escalating run: no local knob fixes the half handshake's
		// missed-pulse hazard, so the loop climbs to the tier-3 protocol
		// reselection.
		{"half-solo-drop1", protogen.Config{Protocol: spec.HalfHandshake}},
	}
}

func measureRepair(sc repairScenario, workers, reps int) (RepairMeasurement, error) {
	best := RepairMeasurement{Scenario: sc.name}
	for r := 0; r < reps; r++ {
		sys, bus := workloads.PQSolo()
		builder := func(cfg protogen.Config) (*spec.System, []string, error) {
			fresh := spec.Clone(sys)
			ref, err := protogen.Generate(fresh, fresh.Buses[0], cfg)
			if err != nil {
				return nil, nil, err
			}
			return fresh, ref.AbortKeys(), nil
		}
		start := time.Now()
		res, err := repair.Run(builder, sc.base, repair.Config{
			Verify: verify.Config{MaxDrops: 1, Workers: workers},
			Cost: &repair.CostModel{
				Channels: bus.Channels,
				Width:    bus.Width,
				Est:      estimate.New(sys.Channels),
			},
		})
		wall := time.Since(start)
		if err != nil {
			return best, fmt.Errorf("%s: repair: %w", sc.name, err)
		}
		if !res.Verified() {
			return best, fmt.Errorf("%s: repair did not converge:\n%s", sc.name, res.Format())
		}
		m := RepairMeasurement{
			Scenario:   sc.name,
			Iterations: len(res.Iterations),
			FinalTier:  res.FinalTier,
			WallMS:     float64(wall.Microseconds()) / 1000,
			Exhaustive: res.Report.IncompleteReason == "",
		}
		for _, mu := range res.Mutations {
			m.Mutations = append(m.Mutations, mu.String())
		}
		for _, it := range res.Iterations {
			m.StatesTotal += it.States
		}
		if n := len(res.Iterations); n > 0 {
			m.StatesFinal = res.Iterations[n-1].States
		}
		if r == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best, nil
}

func measure(sc scenario, workers, reps int) (Measurement, error) {
	best := Measurement{Scenario: sc.name}
	for r := 0; r < reps; r++ {
		sys, vcfg, err := sc.build(workers)
		if err != nil {
			return best, fmt.Errorf("%s: synthesis: %w", sc.name, err)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep, err := verify.Check(sys, vcfg)
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return best, fmt.Errorf("%s: check: %w", sc.name, err)
		}
		m := Measurement{
			Scenario:       sc.name,
			States:         rep.States,
			Transitions:    rep.Transitions,
			WallMS:         float64(wall.Microseconds()) / 1000,
			StatesPerSec:   float64(rep.States) / wall.Seconds(),
			BytesPerState:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(rep.States),
			AllocsPerState: float64(m1.Mallocs-m0.Mallocs) / float64(rep.States),
			Violations:     len(rep.Violations),
			Incomplete:     rep.IncompleteReason,
			MemBudgetMB:    vcfg.MemBudget >> 20,
			SpilledStates:  rep.SpilledStates,
			SpillMB:        rep.SpillBytes >> 20,
		}
		if r == 0 || m.WallMS < best.WallMS {
			best = m
		}
	}
	return best, nil
}

func main() {
	label := flag.String("label", "dev", "run label recorded in the output file")
	suite := flag.String("suite", "verify", "benchmark suite: verify | fault | repair | serve")
	out := flag.String("o", "", "output file (default BENCH_<suite>.json)")
	fresh := flag.Bool("fresh", false, "overwrite the output file instead of appending")
	reps := flag.Int("reps", 3, "repetitions per scenario (best wall time wins)")
	var workers int
	flag.IntVar(&workers, "j", 0, "worker goroutines (0 = all CPUs)")
	flag.IntVar(&workers, "workers", 0, "alias for -j")
	runs := flag.Int("runs", 100_000, "faulty runs per fault-suite scenario")
	serveReqs := flag.Int("reqs", 2000, "requests per serve-suite pass")
	serveConc := flag.Int("conc", 64, "concurrent clients in the serve suite")
	serveCancels := flag.Int("cancels", 8, "cancel probes in the serve suite's cold pass")
	flag.Parse()

	run := Run{
		Label:     *label,
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
	}
	comment := fileComment
	file := *out
	switch *suite {
	case "verify":
		if file == "" {
			file = "BENCH_verify.json"
		}
		for _, sc := range scenarios() {
			m, err := measure(sc, workers, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-18s %7d states %8d transitions %9.1f ms %10.0f states/s %8.0f B/state %6.1f allocs/state\n",
				m.Scenario, m.States, m.Transitions, m.WallMS, m.StatesPerSec, m.BytesPerState, m.AllocsPerState)
			run.Scenarios = append(run.Scenarios, m)
		}
	case "fault":
		if file == "" {
			file = "BENCH_fault.json"
		}
		comment = faultFileComment
		for _, sc := range faultScenarios() {
			m, err := measureFault(sc, *runs, workers, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-22s %8d runs %9.1f ms %9.0f runs/s %8.0f B/run %7.1f allocs/run  %d/%d/%d/%d surv/abort/corr/dead\n",
				m.Scenario, m.Runs, m.WallMS, m.RunsPerSec, m.BytesPerRun, m.AllocsPerRun,
				m.Survived, m.AbortedCleanly, m.Corrupted, m.Deadlocked)
			run.Fault = append(run.Fault, m)
		}
	case "repair":
		if file == "" {
			file = "BENCH_repair.json"
		}
		comment = repairFileComment
		for _, sc := range repairScenarios() {
			m, err := measureRepair(sc, workers, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-18s %2d iterations  tier %d  %7d states total %7d final %9.1f ms  %s\n",
				m.Scenario, m.Iterations, m.FinalTier, m.StatesTotal, m.StatesFinal, m.WallMS,
				strings.Join(m.Mutations, "+"))
			run.Repair = append(run.Repair, m)
		}
	case "serve":
		if file == "" {
			file = "BENCH_serve.json"
		}
		comment = serveFileComment
		ms, err := measureServe(workers, *serveReqs, *serveConc, *serveCancels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		for _, m := range ms {
			fmt.Printf("%-12s %6d reqs %8.0f reqs/s  p50 %7.2f ms  p99 %8.2f ms  hit %4.0f%%  cancel(avg/max) %.1f/%.1f ms\n",
				m.Scenario, m.Requests, m.ReqsPerSec, m.P50Ms, m.P99Ms,
				m.CacheHitRate*100, m.CancelServerAvgMs, m.CancelServerMaxMs)
			run.Serve = append(run.Serve, m)
		}
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown suite %q (want verify, fault, repair or serve)\n", *suite)
		os.Exit(1)
	}

	var f File
	if !*fresh {
		if data, err := os.ReadFile(file); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s exists but is not parseable (%v); use -fresh to overwrite\n", file, err)
				os.Exit(1)
			}
		}
	}
	f.Comment = comment
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(file, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded run %q in %s\n", *label, file)
}
