// Command gengolden regenerates testdata/pq_refined.vhdl.golden, the
// pinned emitter output for the refined Fig. 3 system.
package main

import (
	"fmt"
	"os"

	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/vhdlgen"
	"repro/internal/workloads"
)

func main() {
	sys, bus := workloads.PQ()
	if _, err := protogen.Generate(sys, bus, protogen.Config{Protocol: spec.FullHandshake}); err != nil {
		panic(err)
	}
	out := vhdlgen.Emit(sys)
	if err := os.WriteFile("testdata/pq_refined.vhdl.golden", []byte(out), 0o644); err != nil {
		panic(err)
	}
	fmt.Println(len(out), "bytes written")
}
